package localdp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/infotheory"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestKRRValidation(t *testing.T) {
	if _, err := NewKRR(1, 1); err == nil {
		t.Error("K < 2")
	}
	if _, err := NewKRR(4, 0); err == nil {
		t.Error("epsilon")
	}
}

func TestKRRTruthProbability(t *testing.T) {
	m, err := NewKRR(2, math.Log(3))
	if err != nil {
		t.Fatal(err)
	}
	// K=2: p = e^ε/(e^ε+1) = 3/4 — matches binary randomized response.
	if !mathx.AlmostEqual(m.TruthProbability(), 0.75, 1e-12) {
		t.Errorf("p = %v", m.TruthProbability())
	}
}

func TestKRRChannelIsEpsLDP(t *testing.T) {
	// Every pair of channel rows must have ratios within e^ε.
	for _, eps := range []float64{0.3, 1, 3} {
		m, err := NewKRR(5, eps)
		if err != nil {
			t.Fatal(err)
		}
		w := m.Channel()
		// Rows are distributions.
		for i, row := range w {
			if !mathx.AlmostEqual(mathx.SumSlice(row), 1, 1e-12) {
				t.Fatalf("row %d sums to %v", i, mathx.SumSlice(row))
			}
		}
		for a := range w {
			for b := range w {
				for j := range w[a] {
					ratio := math.Abs(math.Log(w[a][j] / w[b][j]))
					if ratio > eps+1e-9 {
						t.Fatalf("eps=%v: rows %d,%d output %d ratio %v", eps, a, b, j, ratio)
					}
				}
			}
		}
		// The worst-case ratio is exactly ε (truth vs lie on the same cell).
		worst := math.Log(w[0][0] / w[1][0])
		if !mathx.AlmostEqual(worst, eps, 1e-9) {
			t.Errorf("eps=%v: worst ratio %v", eps, worst)
		}
	}
}

func TestKRRPerturbDistribution(t *testing.T) {
	g := rng.New(1)
	m, err := NewKRR(4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	nSamp := 200_000
	counts := make([]int, 4)
	for i := 0; i < nSamp; i++ {
		counts[m.Perturb(2, g)]++
	}
	w := m.Channel()[2]
	for j, c := range counts {
		got := float64(c) / float64(nSamp)
		if math.Abs(got-w[j]) > 0.01 {
			t.Errorf("output %d: freq %v, channel %v", j, got, w[j])
		}
	}
}

func TestKRRFrequencyEstimation(t *testing.T) {
	g := rng.New(3)
	m, err := NewKRR(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.4, 0.3, 0.15, 0.1, 0.05}
	n := 100_000
	reports := make([]int, n)
	for i := range reports {
		v := g.Categorical(truth)
		reports[i] = m.Perturb(v, g)
	}
	est, err := m.EstimateFrequencies(reports)
	if err != nil {
		t.Fatal(err)
	}
	for v := range truth {
		if math.Abs(est[v]-truth[v]) > 0.02 {
			t.Errorf("freq[%d] = %v, want %v", v, est[v], truth[v])
		}
	}
	if _, err := m.EstimateFrequencies(nil); err == nil {
		t.Error("empty reports")
	}
	if _, err := m.EstimateFrequencies([]int{9}); err == nil {
		t.Error("out-of-domain report")
	}
}

func TestOUEValidationAndFlipProb(t *testing.T) {
	if _, err := NewOUE(1, 1); err == nil {
		t.Error("K < 2")
	}
	if _, err := NewOUE(4, -1); err == nil {
		t.Error("epsilon")
	}
	m, _ := NewOUE(4, math.Log(3))
	if !mathx.AlmostEqual(m.FlipOnProbability(), 0.25, 1e-12) {
		t.Errorf("q = %v", m.FlipOnProbability())
	}
}

func TestOUEFrequencyEstimation(t *testing.T) {
	g := rng.New(5)
	m, err := NewOUE(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.35, 0.25, 0.2, 0.1, 0.07, 0.03}
	n := 100_000
	reports := make([][]bool, n)
	for i := range reports {
		v := g.Categorical(truth)
		reports[i] = m.Perturb(v, g)
	}
	est, err := m.EstimateFrequencies(reports)
	if err != nil {
		t.Fatal(err)
	}
	for v := range truth {
		if math.Abs(est[v]-truth[v]) > 0.02 {
			t.Errorf("freq[%d] = %v, want %v", v, est[v], truth[v])
		}
	}
}

func TestOUEBeatsKRRVarianceAtLargeK(t *testing.T) {
	// Wang et al.: OUE's variance is lower than KRR's for large domains.
	n := 10_000
	eps := 1.0
	f := 0.1
	for _, k := range []int{16, 64, 256} {
		if OUEVariance(eps, f, n) >= KRRVariance(k, eps, f, n) {
			t.Errorf("OUE variance not below KRR at K=%d", k)
		}
	}
	// And KRR wins for small K (binary).
	if KRRVariance(2, eps, f, n) >= OUEVariance(eps, f, n) {
		t.Error("KRR should win at K=2")
	}
}

func TestKRRChannelLeakageBounded(t *testing.T) {
	// Per-record min-entropy leakage and MI of the KRR channel are capped
	// by ε (Alvim et al. for min-entropy; capacity cap for Shannon).
	for _, eps := range []float64{0.5, 2} {
		m, err := NewKRR(4, eps)
		if err != nil {
			t.Fatal(err)
		}
		w := m.Channel()
		mec, err := infotheory.MinEntropyCapacity(w)
		if err != nil {
			t.Fatal(err)
		}
		if mec > eps+1e-9 {
			t.Errorf("min-entropy capacity %v exceeds eps %v", mec, eps)
		}
		cap_, _, err := infotheory.BlahutArimoto(w, 1e-10, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if cap_ > eps+1e-9 {
			t.Errorf("Shannon capacity %v exceeds eps %v", cap_, eps)
		}
	}
}

func TestEstimatesAreDistributionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(seed)
		m, err := NewKRR(3, 1)
		if err != nil {
			return false
		}
		reports := make([]int, 100)
		for i := range reports {
			reports[i] = m.Perturb(g.Intn(3), g)
		}
		est, err := m.EstimateFrequencies(reports)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range est {
			if v < 0 {
				return false
			}
			sum += v
		}
		return mathx.AlmostEqual(sum, 1, 1e-9) || sum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPerturbPanicsOutOfDomain(t *testing.T) {
	g := rng.New(7)
	m, _ := NewKRR(3, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-domain Perturb should panic")
		}
	}()
	m.Perturb(3, g)
}
