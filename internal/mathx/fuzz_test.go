package mathx

// Native Go fuzz targets for the log-domain primitives that every
// posterior, mechanism, and channel computation funnels through. Each
// target checks algebraic invariants that must hold for arbitrary
// finite (and infinite) inputs; run the smoke pass with `make
// fuzz-smoke`.

import (
	"math"
	"testing"
)

// fuzzTol is the relative tolerance for comparisons against naive
// (unstable) reference computations in their safe range.
const fuzzTol = 1e-9

func anyNaN(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// FuzzLogAddExp checks that LogAddExp is commutative, bracketed by
// [max(a,b), max(a,b)+ln 2], monotone against +-Inf conventions, and
// agrees with the naive log(exp(a)+exp(b)) where that is stable.
func FuzzLogAddExp(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(-1000.0, -1000.5)
	f.Add(700.0, 710.0)
	f.Add(math.Inf(-1), 3.0)
	f.Add(math.Inf(1), -2.0)
	f.Add(1e-308, -1e-308)
	f.Fuzz(func(t *testing.T, a, b float64) {
		if anyNaN(a, b) {
			t.Skip("NaN propagates by IEEE convention; nothing to check")
		}
		got := LogAddExp(a, b)
		if sym := LogAddExp(b, a); math.Float64bits(got) != math.Float64bits(sym) {
			t.Fatalf("not commutative: LogAddExp(%g,%g)=%g but LogAddExp(%g,%g)=%g", a, b, got, b, a, sym)
		}
		hi := math.Max(a, b)
		if math.IsInf(hi, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("LogAddExp(%g,%g)=%g, want +Inf", a, b, got)
			}
			return
		}
		if math.IsInf(hi, -1) {
			if !math.IsInf(got, -1) {
				t.Fatalf("LogAddExp(-Inf,-Inf)=%g, want -Inf", got)
			}
			return
		}
		if got < hi || got > hi+math.Ln2+1e-12 {
			t.Fatalf("LogAddExp(%g,%g)=%g outside [max, max+ln2]=[%g,%g]", a, b, got, hi, hi+math.Ln2)
		}
		// Reference comparison where exp cannot overflow or flush to zero.
		if math.Abs(a) < 300 && math.Abs(b) < 300 {
			want := math.Log(math.Exp(a) + math.Exp(b))
			if math.Abs(got-want) > fuzzTol*math.Max(1, math.Abs(want)) {
				t.Fatalf("LogAddExp(%g,%g)=%g, naive=%g", a, b, got, want)
			}
		}
	})
}

// FuzzLogSumExp checks the bracketing max <= LSE <= max + log n,
// permutation insensitivity, consistency with pairwise LogAddExp, and
// the -Inf identity element.
func FuzzLogSumExp(f *testing.F) {
	f.Add(0.0, 0.0, 0.0)
	f.Add(-745.0, -746.0, -747.0)
	f.Add(700.0, -700.0, 0.0)
	f.Add(math.Inf(-1), math.Inf(-1), 5.0)
	f.Add(1e300, -1e300, 2.5)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if anyNaN(a, b, c) {
			t.Skip("NaN propagates by IEEE convention; nothing to check")
		}
		xs := []float64{a, b, c}
		got := LogSumExp(xs)
		hi := math.Max(a, math.Max(b, c))
		if math.IsInf(hi, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("LogSumExp(%v)=%g, want +Inf", xs, got)
			}
			return
		}
		if math.IsInf(hi, -1) {
			if !math.IsInf(got, -1) {
				t.Fatalf("LogSumExp(all -Inf)=%g, want -Inf", got)
			}
			return
		}
		if got < hi-1e-12 || got > hi+math.Log(3)+1e-12 {
			t.Fatalf("LogSumExp(%v)=%g outside [max, max+log3]=[%g,%g]", xs, got, hi, hi+math.Log(3))
		}
		// Permutation insensitivity (up to accumulation rounding).
		perm := LogSumExp([]float64{c, a, b})
		if math.Abs(got-perm) > 1e-9*math.Max(1, math.Abs(got)) {
			t.Fatalf("permutation changed LogSumExp: %g vs %g", got, perm)
		}
		// Pairwise consistency: LSE(a,b,c) ~ LogAddExp(LogAddExp(a,b),c).
		pair := LogAddExp(LogAddExp(a, b), c)
		if math.Abs(got-pair) > 1e-9*math.Max(1, math.Abs(got)) {
			t.Fatalf("LogSumExp(%v)=%g disagrees with pairwise %g", xs, got, pair)
		}
		// Dropping a -Inf entry must not change the value.
		if math.IsInf(c, -1) {
			two := LogSumExp([]float64{a, b})
			if math.Float64bits(got) != math.Float64bits(two) {
				t.Fatalf("-Inf entry changed LogSumExp: %g vs %g", got, two)
			}
		}
	})
}

// FuzzLogNormalize checks that the output is a normalized log
// distribution: entries are non-positive, equal to xs[i]-logZ, sum to
// one in the linear domain, and the all -Inf convention holds.
func FuzzLogNormalize(f *testing.F) {
	f.Add(0.0, 0.0, 0.0)
	f.Add(-1000.0, -1001.0, -999.5)
	f.Add(500.0, 499.0, -500.0)
	f.Add(math.Inf(-1), math.Inf(-1), math.Inf(-1))
	f.Add(0.1, 1e-9, -1e9)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if anyNaN(a, b, c) {
			t.Skip("NaN propagates by IEEE convention; nothing to check")
		}
		if math.IsInf(a, 1) || math.IsInf(b, 1) || math.IsInf(c, 1) {
			t.Skip("+Inf mass has no normalized distribution")
		}
		xs := []float64{a, b, c}
		norm, logZ := LogNormalize(xs)
		if len(norm) != len(xs) {
			t.Fatalf("length changed: %d -> %d", len(xs), len(norm))
		}
		if math.IsInf(logZ, -1) {
			for i, v := range norm {
				if !math.IsInf(v, -1) {
					t.Fatalf("zero-mass input: norm[%d]=%g, want -Inf", i, v)
				}
			}
			return
		}
		var linSum float64
		for i, v := range norm {
			if v > 1e-12 {
				t.Fatalf("norm[%d]=%g > 0: a log-probability above one", i, v)
			}
			if want := xs[i] - logZ; !math.IsInf(v, -1) && math.Abs(v-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("norm[%d]=%g, want xs[i]-logZ=%g", i, v, want)
			}
			linSum += math.Exp(v)
		}
		if math.Abs(linSum-1) > 1e-9 {
			t.Fatalf("normalized mass sums to %g, want 1 (xs=%v)", linSum, xs)
		}
	})
}
