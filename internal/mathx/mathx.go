// Package mathx provides numerically-stable mathematical primitives used
// throughout the library: log-domain arithmetic, compensated summation,
// online moments, simple one-dimensional optimizers and root finders, and
// a handful of special-function helpers built on the standard library.
//
// All probability computations in this repository are carried out in log
// space; the helpers here (LogSumExp, LogAddExp, Log1mExp) are the
// foundation for that discipline.
package mathx

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned by iterative routines that fail to converge
// within their iteration budget.
var ErrNoConvergence = errors.New("mathx: no convergence")

// ErrBadBracket is returned by root finders and minimizers when the supplied
// interval does not bracket a root or minimum as required.
var ErrBadBracket = errors.New("mathx: interval does not bracket the target")

// NegInf is the IEEE-754 negative infinity, the additive identity of
// log-domain accumulation.
var NegInf = math.Inf(-1)

// LogSumExp returns log(sum_i exp(xs[i])) computed stably.
//
// The empty sum is log(0) = -Inf. Entries equal to -Inf contribute nothing.
// If any entry is +Inf the result is +Inf.
func LogSumExp(xs []float64) float64 {
	maxv := NegInf
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return NegInf
	}
	if math.IsInf(maxv, 1) {
		return math.Inf(1)
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// LogAddExp returns log(exp(a) + exp(b)) computed stably.
func LogAddExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return NegInf
	}
	if math.IsInf(a, 1) {
		return math.Inf(1)
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Log1mExp returns log(1 - exp(x)) for x <= 0, using the algorithm of
// Mächler (2012): log1p(-exp(x)) for x < -ln 2 and log(-expm1(x)) otherwise.
// Log1mExp(0) is -Inf; positive x yields NaN.
func Log1mExp(x float64) float64 {
	if x > 0 {
		return math.NaN()
	}
	if x == 0 { //dplint:ignore floateq exact sentinel: log(1-exp(0)) = -Inf only at bitwise zero
		return NegInf
	}
	if x < -math.Ln2 {
		return math.Log1p(-math.Exp(x))
	}
	return math.Log(-math.Expm1(x))
}

// LogSubExp returns log(exp(a) - exp(b)) for a >= b. If a < b it returns NaN
// (the difference is negative and has no real logarithm). LogSubExp(a, a)
// is -Inf.
func LogSubExp(a, b float64) float64 {
	if a < b {
		return math.NaN()
	}
	if a == b || math.IsInf(a, -1) { //dplint:ignore floateq exact cancellation fast path: e^a - e^b is exactly 0 only when a equals b bitwise
		return NegInf
	}
	return a + Log1mExp(b-a)
}

// LogNormalize shifts log-weights so that they represent a normalized
// probability distribution: out[i] = xs[i] - LogSumExp(xs). It returns the
// normalizing constant log Z. If all entries are -Inf the output is all
// -Inf and log Z is -Inf.
//
// The result is written into a freshly allocated slice; xs is not modified.
func LogNormalize(xs []float64) (normalized []float64, logZ float64) {
	logZ = LogSumExp(xs)
	out := make([]float64, len(xs))
	if math.IsInf(logZ, -1) {
		for i := range out {
			out[i] = NegInf
		}
		return out, logZ
	}
	for i, x := range xs {
		out[i] = x - logZ
	}
	return out, logZ
}

// ExpNormalize converts log-weights into a normalized probability vector in
// the linear domain, stably. All -Inf input yields the zero vector.
func ExpNormalize(xs []float64) []float64 {
	normalized, logZ := LogNormalize(xs)
	out := make([]float64, len(xs))
	if math.IsInf(logZ, -1) {
		return out
	}
	for i, x := range normalized {
		out[i] = math.Exp(x)
	}
	return out
}

// Sigmoid returns 1/(1+exp(-x)) computed without overflow for any x.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LogSigmoid returns log(Sigmoid(x)) = -log(1+exp(-x)) stably.
func LogSigmoid(x float64) float64 {
	if x >= 0 {
		return -math.Log1p(math.Exp(-x))
	}
	return x - math.Log1p(math.Exp(x))
}

// Logit is the inverse of Sigmoid: log(p/(1-p)). It requires 0 < p < 1 and
// returns ±Inf at the endpoints.
func Logit(p float64) float64 {
	return math.Log(p) - math.Log1p(-p)
}

// XLogX returns x*log(x) with the continuous extension 0*log(0) = 0.
// Negative x yields NaN.
func XLogX(x float64) float64 {
	if x == 0 { //dplint:ignore floateq continuous extension 0*log(0) = 0 applies at exact zero only
		return 0
	}
	return x * math.Log(x)
}

// XLogY returns x*log(y) with the convention 0*log(0) = 0 (used by entropy
// and KL computations). x > 0 with y == 0 yields -Inf as expected.
func XLogY(x, y float64) float64 {
	if x == 0 { //dplint:ignore floateq convention 0*log(y) = 0 applies at exact zero only
		return 0
	}
	return x * math.Log(y)
}

// Clamp restricts x to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AlmostEqual reports whether a and b are equal to within tol, measured
// absolutely for small magnitudes and relatively for large ones:
// |a-b| <= tol * max(1, |a|, |b|).
func AlmostEqual(a, b, tol float64) bool {
	if a == b { //dplint:ignore floateq fast path of the tolerance comparison itself; also makes Inf == Inf equal
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// NormalCDF returns the standard normal cumulative distribution function
// Φ(x), via the error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), computed by bisection on
// NormalCDF to ~1e-12 accuracy. It returns ±Inf at the endpoints and NaN
// outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0: //dplint:ignore floateq exact endpoint: quantile is ±Inf only at bitwise 0 and 1
		return math.Inf(-1)
	case p == 1: //dplint:ignore floateq exact endpoint: quantile is ±Inf only at bitwise 0 and 1
		return math.Inf(1)
	}
	// Φ is strictly increasing; [-40, 40] covers all representable p.
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-13 {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// KahanSum accumulates float64 values using Kahan–Babuška compensated
// summation, reducing the error of long sums from O(n·eps) to O(eps).
// The zero value is an empty sum ready to use.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Welford tracks the running mean and variance of a stream of observations
// using Welford's numerically-stable online algorithm. The zero value is
// ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations seen.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 for an empty stream).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (NaN for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// PopulationVariance returns the biased (population) variance (NaN for an
// empty stream).
func (w *Welford) PopulationVariance() float64 {
	if w.n < 1 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the square root of the unbiased sample variance.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Bisect finds a root of f in [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite signs (a zero at either endpoint is returned immediately).
// It iterates until the interval width falls below tol or maxIter
// iterations have run, returning the midpoint of the final interval.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 { //dplint:ignore floateq exact root at the endpoint short-circuits the search
		return lo, nil
	}
	if fhi == 0 { //dplint:ignore floateq exact root at the endpoint short-circuits the search
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrBadBracket
	}
	for i := 0; i < maxIter; i++ {
		mid := 0.5 * (lo + hi)
		fmid := f(mid)
		if fmid == 0 || hi-lo < tol { //dplint:ignore floateq exact root short-circuit; the tolerance test is the real convergence criterion
			return mid, nil
		}
		if (fmid > 0) == (fhi > 0) {
			hi, fhi = mid, fmid
		} else {
			lo, flo = mid, fmid
		}
	}
	if hi-lo < tol*10 {
		return 0.5 * (lo + hi), nil
	}
	return 0.5 * (lo + hi), ErrNoConvergence
}

// GoldenSection minimizes a unimodal function f on [lo, hi] by
// golden-section search, returning the approximate minimizer. The interval
// is shrunk until its width falls below tol (or maxIter iterations).
func GoldenSection(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	if lo > hi {
		return 0, ErrBadBracket
	}
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < maxIter && b-a > tol; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b), nil
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be at least 2 (n == 1 returns just lo; n <= 0 returns nil).
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // exact endpoint regardless of rounding
	return out
}

// Logspace returns n points logarithmically spaced between lo and hi
// (both must be positive).
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("mathx: Logspace requires positive endpoints")
	}
	pts := Linspace(math.Log(lo), math.Log(hi), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n >= 2 {
		pts[0], pts[n-1] = lo, hi
	}
	return pts
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (minv, maxv float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	minv, maxv = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minv {
			minv = x
		}
		if x > maxv {
			maxv = x
		}
	}
	return minv, maxv
}

// ArgMax returns the index of the largest element (first occurrence).
// It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first occurrence).
// It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("mathx: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Dot returns the inner product of equal-length slices a and b. It panics
// on a length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var k KahanSum
	for i := range a {
		k.Add(a[i] * b[i])
	}
	return k.Sum()
}

// L1Norm returns sum_i |xs[i]|.
func L1Norm(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(math.Abs(x))
	}
	return k.Sum()
}

// L2Norm returns the Euclidean norm of xs, scaled to avoid overflow.
func L2Norm(xs []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range xs {
		if x == 0 { //dplint:ignore floateq exact-zero skip: only bitwise zero contributes nothing to the norm
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// LInfNorm returns max_i |xs[i]| (0 for an empty slice).
func LInfNorm(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
