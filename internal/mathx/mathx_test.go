package mathx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLogSumExpBasic(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, math.Inf(-1)},
		{"single", []float64{3}, 3},
		{"two equal", []float64{0, 0}, math.Ln2},
		{"with neg inf", []float64{math.Inf(-1), 1}, 1},
		{"all neg inf", []float64{math.Inf(-1), math.Inf(-1)}, math.Inf(-1)},
		{"large values", []float64{1000, 1000}, 1000 + math.Ln2},
		{"very negative", []float64{-1000, -1000}, -1000 + math.Ln2},
	}
	for _, tc := range tests {
		got := LogSumExp(tc.xs)
		if !AlmostEqual(got, tc.want, 1e-12) && !(math.IsInf(got, -1) && math.IsInf(tc.want, -1)) {
			t.Errorf("%s: LogSumExp(%v) = %v, want %v", tc.name, tc.xs, got, tc.want)
		}
	}
}

func TestLogSumExpPosInf(t *testing.T) {
	if got := LogSumExp([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Errorf("LogSumExp with +Inf = %v, want +Inf", got)
	}
}

func TestLogSumExpShiftInvariance(t *testing.T) {
	// log sum exp(x + c) = c + log sum exp(x)
	f := func(a, b, c float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		c = math.Mod(c, 50)
		lhs := LogSumExp([]float64{a + c, b + c})
		rhs := c + LogSumExp([]float64{a, b})
		return AlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogAddExpMatchesLogSumExp(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		return AlmostEqual(LogAddExp(a, b), LogSumExp([]float64{a, b}), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog1mExp(t *testing.T) {
	for _, x := range []float64{-0.1, -0.5, -math.Ln2, -1, -5, -50} {
		want := math.Log(1 - math.Exp(x))
		got := Log1mExp(x)
		if !AlmostEqual(got, want, 1e-9) {
			t.Errorf("Log1mExp(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsInf(Log1mExp(0), -1) {
		t.Error("Log1mExp(0) should be -Inf")
	}
	// Near zero the naive formula log(1-exp(x)) suffers catastrophic
	// cancellation; the accurate value is log(-expm1(x)) ≈ log(-x).
	if got, want := Log1mExp(-1e-10), math.Log(1e-10); !AlmostEqual(got, want, 1e-9) {
		t.Errorf("Log1mExp(-1e-10) = %v, want ≈ %v", got, want)
	}
	if !math.IsNaN(Log1mExp(0.5)) {
		t.Error("Log1mExp(positive) should be NaN")
	}
}

func TestLogSubExp(t *testing.T) {
	got := LogSubExp(math.Log(5), math.Log(3))
	if !AlmostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("LogSubExp(log5, log3) = %v, want log2", got)
	}
	if !math.IsInf(LogSubExp(1, 1), -1) {
		t.Error("LogSubExp(a, a) should be -Inf")
	}
	if !math.IsNaN(LogSubExp(0, 1)) {
		t.Error("LogSubExp(a<b) should be NaN")
	}
}

func TestLogNormalize(t *testing.T) {
	xs := []float64{1, 2, 3}
	norm, logZ := LogNormalize(xs)
	if !AlmostEqual(LogSumExp(norm), 0, 1e-12) {
		t.Errorf("normalized log-weights sum to %v in log space, want 0", LogSumExp(norm))
	}
	if !AlmostEqual(logZ, LogSumExp(xs), 1e-12) {
		t.Errorf("logZ = %v, want %v", logZ, LogSumExp(xs))
	}
	// degenerate all -Inf
	norm2, logZ2 := LogNormalize([]float64{math.Inf(-1), math.Inf(-1)})
	if !math.IsInf(logZ2, -1) {
		t.Error("logZ of all -Inf should be -Inf")
	}
	for _, v := range norm2 {
		if !math.IsInf(v, -1) {
			t.Error("normalized all -Inf should stay -Inf")
		}
	}
}

func TestExpNormalize(t *testing.T) {
	p := ExpNormalize([]float64{0, 0, 0, 0})
	for _, v := range p {
		if !AlmostEqual(v, 0.25, 1e-12) {
			t.Errorf("uniform ExpNormalize gave %v, want 0.25", v)
		}
	}
	sum := SumSlice(ExpNormalize([]float64{-3, 7, 0.5, 2}))
	if !AlmostEqual(sum, 1, 1e-12) {
		t.Errorf("ExpNormalize sums to %v, want 1", sum)
	}
	z := ExpNormalize([]float64{math.Inf(-1)})
	if z[0] != 0 {
		t.Error("ExpNormalize of -Inf should be 0")
	}
}

func TestSigmoidProperties(t *testing.T) {
	if got := Sigmoid(0); !AlmostEqual(got, 0.5, 1e-15) {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Errorf("Sigmoid(1000) = %v, want 1", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Errorf("Sigmoid(-1000) = %v, want 0", got)
	}
	// symmetry: sigmoid(-x) = 1 - sigmoid(x)
	f := func(x float64) bool {
		x = math.Mod(x, 100)
		return AlmostEqual(Sigmoid(-x), 1-Sigmoid(x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSigmoid(t *testing.T) {
	for _, x := range []float64{-30, -1, 0, 1, 30} {
		want := math.Log(Sigmoid(x))
		if !AlmostEqual(LogSigmoid(x), want, 1e-12) {
			t.Errorf("LogSigmoid(%v) = %v, want %v", x, LogSigmoid(x), want)
		}
	}
	// No overflow at extreme negatives: log sigmoid(-1000) ~ -1000.
	if got := LogSigmoid(-1000); !AlmostEqual(got, -1000, 1e-9) {
		t.Errorf("LogSigmoid(-1000) = %v", got)
	}
}

func TestLogitInvertsSigmoid(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		if got := Sigmoid(Logit(p)); !AlmostEqual(got, p, 1e-12) {
			t.Errorf("Sigmoid(Logit(%v)) = %v", p, got)
		}
	}
}

func TestXLogX(t *testing.T) {
	if XLogX(0) != 0 {
		t.Error("XLogX(0) must be 0")
	}
	if !AlmostEqual(XLogX(math.E), math.E, 1e-12) {
		t.Error("XLogX(e) should be e")
	}
}

func TestXLogY(t *testing.T) {
	if XLogY(0, 0) != 0 {
		t.Error("XLogY(0,0) must be 0")
	}
	if !math.IsInf(XLogY(1, 0), -1) {
		t.Error("XLogY(1,0) must be -Inf")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp(lo>hi) should panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.x); !AlmostEqual(got, tc.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.5, 0.9, 0.999} {
		x := NormalQuantile(p)
		if !AlmostEqual(NormalCDF(x), p, 1e-9) {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, NormalCDF(x))
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile endpoints")
	}
	if !math.IsNaN(NormalQuantile(1.5)) {
		t.Error("NormalQuantile(1.5) should be NaN")
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// Sum 1 + 1e-16 repeated: naive summation loses the small terms.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-10
	if !AlmostEqual(k.Sum(), want, 1e-12) {
		t.Errorf("KahanSum = %.18f, want %.18f", k.Sum(), want)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != len(xs) {
		t.Errorf("Count = %d", w.Count())
	}
	if !AlmostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	if !AlmostEqual(w.PopulationVariance(), 4, 1e-12) {
		t.Errorf("PopulationVariance = %v", w.PopulationVariance())
	}
	if !AlmostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", w.Variance())
	}
	var empty Welford
	if !math.IsNaN(empty.Variance()) || !math.IsNaN(empty.PopulationVariance()) {
		t.Error("empty Welford variance should be NaN")
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	g := rng.New(7)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = g.Normal(1, 3)
		w.Add(xs[i])
	}
	mean := SumSlice(xs) / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if !AlmostEqual(w.Mean(), mean, 1e-10) {
		t.Errorf("mean mismatch: %v vs %v", w.Mean(), mean)
	}
	if !AlmostEqual(w.Variance(), ss/float64(len(xs)-1), 1e-10) {
		t.Errorf("variance mismatch: %v vs %v", w.Variance(), ss/float64(len(xs)-1))
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("Bisect sqrt2 = %v", root)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-12, 100); err != ErrBadBracket {
		t.Errorf("expected ErrBadBracket, got %v", err)
	}
	// Root at an endpoint.
	r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12, 100)
	if err != nil || r != 0 {
		t.Errorf("endpoint root: %v, %v", r, err)
	}
}

func TestGoldenSection(t *testing.T) {
	min, err := GoldenSection(func(x float64) float64 { return (x - 1.5) * (x - 1.5) }, -10, 10, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(min, 1.5, 1e-7) {
		t.Errorf("GoldenSection = %v, want 1.5", min)
	}
	if _, err := GoldenSection(nil, 1, 0, 1e-10, 10); err != ErrBadBracket {
		t.Errorf("expected ErrBadBracket, got %v", err)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-15) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Linspace(0, 1, 0) != nil {
		t.Error("Linspace(n=0) should be nil")
	}
	if one := Linspace(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Error("Linspace(n=1)")
	}
	// exact endpoints
	pts := Linspace(0.1, 0.7, 7)
	if pts[0] != 0.1 || pts[6] != 0.7 {
		t.Error("Linspace endpoints not exact")
	}
}

func TestLogspace(t *testing.T) {
	got := Logspace(0.01, 100, 5)
	want := []float64{0.01, 0.1, 1, 10, 100}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-10) {
			t.Errorf("Logspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Logspace with non-positive endpoint should panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestMinMaxArgMinArgMax(t *testing.T) {
	xs := []float64{3, -1, 4, -1, 5}
	minv, maxv := MinMax(xs)
	if minv != -1 || maxv != 5 {
		t.Errorf("MinMax = %v, %v", minv, maxv)
	}
	if ArgMax(xs) != 4 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d (want first occurrence)", ArgMin(xs))
	}
}

func TestNorms(t *testing.T) {
	xs := []float64{3, -4}
	if !AlmostEqual(L2Norm(xs), 5, 1e-12) {
		t.Errorf("L2Norm = %v", L2Norm(xs))
	}
	if !AlmostEqual(L1Norm(xs), 7, 1e-12) {
		t.Errorf("L1Norm = %v", L1Norm(xs))
	}
	if LInfNorm(xs) != 4 {
		t.Errorf("LInfNorm = %v", LInfNorm(xs))
	}
	// L2Norm must not overflow on huge components.
	big := []float64{1e200, 1e200}
	if math.IsInf(L2Norm(big), 1) {
		t.Error("L2Norm overflow")
	}
	if !AlmostEqual(L2Norm(big), 1e200*math.Sqrt2, 1e-12) {
		t.Errorf("L2Norm big = %v", L2Norm(big))
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !AlmostEqual(got, 32, 1e-12) {
		t.Errorf("Dot = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-12) {
		t.Error("should be almost equal")
	}
	if AlmostEqual(1, 1.1, 1e-12) {
		t.Error("should not be almost equal")
	}
	if !AlmostEqual(1e20, 1e20+1, 1e-12) {
		t.Error("relative comparison for large magnitudes")
	}
}
