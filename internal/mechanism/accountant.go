package mechanism

import (
	"errors"
	"math"
	"sync"
)

// SpendMeta carries the ledger metadata of one release: everything an
// observer needs to turn a Spend into an auditable privacy-ledger
// record beyond the Guarantee itself. All fields are optional; the
// plain Spend path leaves them zero.
type SpendMeta struct {
	// Mechanism is the release's kind ("gibbs", "laplace", "expmech",
	// "svt", ...), free-form but stable per call site.
	Mechanism string
	// Sensitivity is the released query's global sensitivity (Δq of
	// Theorem 2.2, ΔR̂ of Theorem 4.1, Δf of Theorem 2.1).
	Sensitivity float64
	// Outcomes is the outcome domain size of the release: |Θ| for an
	// exponential-mechanism draw, the output dimension for a numeric
	// vector. 0 means unknown.
	Outcomes int
	// Duration is the release's duration in the run's clock units (0 =
	// untimed). Deterministic runs use logical ticks, never wall time.
	Duration int64
	// Span is the trace-span id enclosing the release, if the run is
	// traced.
	Span uint64
	// Trace is the 32-hex-digit W3C trace id of the request that caused
	// the release ("" outside any request trace). It is what joins a
	// spend back to the exact request — across the access log, the span
	// tree, and the ledger — in per-request ε attribution.
	Trace string
	// Charge is the durable-charge scope id of the request the spend
	// belongs to ("" outside any write-ahead-logged request). The serve
	// layer stamps it via WithChargeScope so every guarantee a facade
	// call commits — however it recomputes ε internally — is collected
	// onto the request's WAL commit record exactly.
	Charge string
}

// SpendRecord is one accounted release: the guarantee, its metadata,
// and the accountant's monotonic sequence number. Seq is assigned under
// the accountant's lock, so it is a total arrival order — the privacy
// ledger sorts by it to present releases in audit order even when the
// parallel engine's workers spend concurrently.
type SpendRecord struct {
	Seq       uint64
	Guarantee Guarantee
	Meta      SpendMeta
}

// SpendObserver receives every accounted release, synchronously and in
// sequence order (the callback runs under the accountant's lock — keep
// it cheap and never call back into the accountant). The obs package's
// privacy ledger is the intended implementation.
type SpendObserver func(SpendRecord)

// Accountant tracks the privacy cost of a sequence of mechanism
// invocations on the same dataset and reports composed guarantees.
// The zero value is an empty accountant ready to use, and a nil
// *Accountant is a valid sink that records nothing — release paths can
// spend unconditionally and let the caller decide whether to account.
// Spend and the composition queries are safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	spent    []SpendRecord
	observer SpendObserver

	// Budget enforcement (see budget.go): when hasBudget is set, Reserve
	// admits a release only if the canonical composition of spent,
	// reserved, and the request stays within budget. reserved holds the
	// outstanding (reserved-but-not-yet-committed) claims by identity.
	budget    Guarantee
	hasBudget bool
	reserved  []*Reservation
}

// SetObserver installs the spend observer (nil to remove). On a nil
// accountant it is a no-op. The observer sees every subsequent spend
// with its sequence number; it is invoked under the accountant's lock
// so records arrive in sequence order.
func (a *Accountant) SetObserver(obs SpendObserver) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observer = obs
}

// Spend records one mechanism invocation. On a nil accountant it is a
// no-op, so library code never needs to branch around accounting.
func (a *Accountant) Spend(g Guarantee) {
	a.SpendDetail(g, SpendMeta{})
}

// SpendDetail records one mechanism invocation together with its ledger
// metadata. It assigns the next monotonic sequence number under the
// accountant's lock and forwards the full record to the observer, if
// one is installed. On a nil accountant it is a no-op.
func (a *Accountant) SpendDetail(g Guarantee, meta SpendMeta) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := SpendRecord{Seq: uint64(len(a.spent)), Guarantee: g, Meta: meta}
	a.spent = append(a.spent, rec)
	if a.observer != nil {
		a.observer(rec)
	}
}

// Count returns the number of recorded invocations.
func (a *Accountant) Count() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spent)
}

// Records returns a copy of the accounted releases in sequence order.
func (a *Accountant) Records() []SpendRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]SpendRecord(nil), a.spent...)
}

// guarantees returns the spent guarantees (caller holds no lock).
func (a *Accountant) guarantees() []Guarantee {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Guarantee, len(a.spent))
	for i, r := range a.spent {
		out[i] = r.Guarantee
	}
	return out
}

// BasicComposition returns the sequential-composition guarantee:
// ε_total = Σ εᵢ, δ_total = Σ δᵢ.
//
// The sum runs in a canonical order — guarantees sorted ascending by
// (ε, δ) — with Kahan compensation, so the composed guarantee is a pure
// function of the *multiset* of spends. Floating-point addition is not
// associative; without the canonical order, workers interleaving their
// spends differently across runs (or across Workers settings of the
// parallel engine) could change the composed ε's low bits, and the
// runtime privacy ledger could never be golden-tested. The obs ledger's
// ComposeBasic implements the identical algorithm, so ledger and
// accountant agree bit-for-bit.
func (a *Accountant) BasicComposition() Guarantee {
	if a == nil {
		return Guarantee{}
	}
	return composeCanonical(a.guarantees())
}

// AdvancedComposition returns the Dwork–Rothblum–Vadhan advanced
// composition bound for k mechanisms each ε-DP (requires homogeneous pure
// guarantees): for any slack δ′ > 0 the composition is
// (ε·sqrt(2k·ln(1/δ′)) + k·ε·(e^ε − 1), δ′)-DP.
// It returns an error if the recorded guarantees are heterogeneous or
// impure, since the closed form only covers that case.
func (a *Accountant) AdvancedComposition(deltaSlack float64) (Guarantee, error) {
	if deltaSlack <= 0 || deltaSlack >= 1 {
		return Guarantee{}, errors.New("mechanism: advanced composition needs slack in (0,1)")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.spent) == 0 {
		return Guarantee{Delta: deltaSlack}, nil
	}
	eps := a.spent[0].Guarantee.Epsilon
	for _, r := range a.spent {
		g := r.Guarantee
		if g.Delta != 0 { //dplint:ignore floateq pure eps-DP is encoded as bitwise delta=0; no arithmetic ever perturbs it
			return Guarantee{}, errors.New("mechanism: advanced composition implemented for pure ε-DP only")
		}
		if g.Epsilon != eps { //dplint:ignore floateq homogeneity check: the spent guarantees must carry the identical stored ε
			return Guarantee{}, errors.New("mechanism: advanced composition implemented for homogeneous ε only")
		}
	}
	k := float64(len(a.spent))
	epsTotal := eps*math.Sqrt(2*k*math.Log(1/deltaSlack)) + k*eps*math.Expm1(eps)
	return Guarantee{Epsilon: epsTotal, Delta: deltaSlack}, nil
}

// BestComposition returns the tighter of basic and advanced composition
// (advanced with the given slack, falling back to basic when advanced is
// inapplicable or looser).
func (a *Accountant) BestComposition(deltaSlack float64) Guarantee {
	basic := a.BasicComposition()
	adv, err := a.AdvancedComposition(deltaSlack)
	if err != nil {
		return basic
	}
	if adv.Epsilon < basic.Epsilon {
		return adv
	}
	return basic
}

// ParallelComposition returns the guarantee for mechanisms applied to
// disjoint partitions of the data: the max of the individual guarantees.
func ParallelComposition(gs []Guarantee) Guarantee {
	var out Guarantee
	for _, g := range gs {
		if g.Epsilon > out.Epsilon {
			out.Epsilon = g.Epsilon
		}
		if g.Delta > out.Delta {
			out.Delta = g.Delta
		}
	}
	return out
}

// Reset clears the accountant (the observer stays installed; sequence
// numbers restart from zero).
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = a.spent[:0]
}
