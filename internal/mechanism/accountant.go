package mechanism

import (
	"errors"
	"math"
	"sync"
)

// Accountant tracks the privacy cost of a sequence of mechanism
// invocations on the same dataset and reports composed guarantees.
// The zero value is an empty accountant ready to use, and a nil
// *Accountant is a valid sink that records nothing — release paths can
// spend unconditionally and let the caller decide whether to account.
// Spend and the composition queries are safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	spent []Guarantee
}

// Spend records one mechanism invocation. On a nil accountant it is a
// no-op, so library code never needs to branch around accounting.
func (a *Accountant) Spend(g Guarantee) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = append(a.spent, g)
}

// Count returns the number of recorded invocations.
func (a *Accountant) Count() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spent)
}

// BasicComposition returns the sequential-composition guarantee:
// ε_total = Σ εᵢ, δ_total = Σ δᵢ.
func (a *Accountant) BasicComposition() Guarantee {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out Guarantee
	for _, g := range a.spent {
		out.Epsilon += g.Epsilon
		out.Delta += g.Delta
	}
	return out
}

// AdvancedComposition returns the Dwork–Rothblum–Vadhan advanced
// composition bound for k mechanisms each ε-DP (requires homogeneous pure
// guarantees): for any slack δ′ > 0 the composition is
// (ε·sqrt(2k·ln(1/δ′)) + k·ε·(e^ε − 1), δ′)-DP.
// It returns an error if the recorded guarantees are heterogeneous or
// impure, since the closed form only covers that case.
func (a *Accountant) AdvancedComposition(deltaSlack float64) (Guarantee, error) {
	if deltaSlack <= 0 || deltaSlack >= 1 {
		return Guarantee{}, errors.New("mechanism: advanced composition needs slack in (0,1)")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.spent) == 0 {
		return Guarantee{Delta: deltaSlack}, nil
	}
	eps := a.spent[0].Epsilon
	for _, g := range a.spent {
		if g.Delta != 0 { //dplint:ignore floateq pure eps-DP is encoded as bitwise delta=0; no arithmetic ever perturbs it
			return Guarantee{}, errors.New("mechanism: advanced composition implemented for pure ε-DP only")
		}
		if g.Epsilon != eps { //dplint:ignore floateq homogeneity check: the spent guarantees must carry the identical stored ε
			return Guarantee{}, errors.New("mechanism: advanced composition implemented for homogeneous ε only")
		}
	}
	k := float64(len(a.spent))
	epsTotal := eps*math.Sqrt(2*k*math.Log(1/deltaSlack)) + k*eps*math.Expm1(eps)
	return Guarantee{Epsilon: epsTotal, Delta: deltaSlack}, nil
}

// BestComposition returns the tighter of basic and advanced composition
// (advanced with the given slack, falling back to basic when advanced is
// inapplicable or looser).
func (a *Accountant) BestComposition(deltaSlack float64) Guarantee {
	basic := a.BasicComposition()
	adv, err := a.AdvancedComposition(deltaSlack)
	if err != nil {
		return basic
	}
	if adv.Epsilon < basic.Epsilon {
		return adv
	}
	return basic
}

// ParallelComposition returns the guarantee for mechanisms applied to
// disjoint partitions of the data: the max of the individual guarantees.
func ParallelComposition(gs []Guarantee) Guarantee {
	var out Guarantee
	for _, g := range gs {
		if g.Epsilon > out.Epsilon {
			out.Epsilon = g.Epsilon
		}
		if g.Delta > out.Delta {
			out.Delta = g.Delta
		}
	}
	return out
}

// Reset clears the accountant.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = a.spent[:0]
}
