package mechanism

import (
	"sync"
	"testing"
)

// TestAccountantNilSink pins the nil-sink contract the release paths rely
// on: library code spends unconditionally and a nil accountant absorbs it.
func TestAccountantNilSink(t *testing.T) {
	var a *Accountant
	a.Spend(Guarantee{Epsilon: 1}) // must not panic
	if a.Count() != 0 {
		t.Errorf("nil accountant Count = %d", a.Count())
	}
}

// TestAdvancedCompositionSlackBoundary walks both ends of the open
// interval (0, 1): the formula needs ln(1/δ′), so 0 diverges and 1 would
// certify a vacuous guarantee.
func TestAdvancedCompositionSlackBoundary(t *testing.T) {
	var a Accountant
	a.Spend(Guarantee{Epsilon: 0.1})
	for _, slack := range []float64{0, 1, -1e-9, 1.5} {
		if _, err := a.AdvancedComposition(slack); err == nil {
			t.Errorf("slack %v must error", slack)
		}
	}
	if _, err := a.AdvancedComposition(0.999999); err != nil {
		t.Errorf("slack just inside (0,1) must work: %v", err)
	}
}

// TestAdvancedCompositionZeroSpends: with nothing spent the composition
// is free — ε = 0 — but the slack is still paid into δ.
func TestAdvancedCompositionZeroSpends(t *testing.T) {
	var a Accountant
	g, err := a.AdvancedComposition(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Epsilon != 0 || g.Delta != 1e-6 {
		t.Errorf("zero-spend advanced = %+v, want {0, 1e-6}", g)
	}
}

// TestBestCompositionTieBreaking: when advanced does not strictly beat
// basic, basic wins — it carries no slack δ. With zero spends both give
// ε = 0, so the tie must resolve to basic's δ = 0; with a single spend
// advanced is strictly looser and basic must be returned exactly.
func TestBestCompositionTieBreaking(t *testing.T) {
	var empty Accountant
	got := empty.BestComposition(1e-6)
	if got.Epsilon != 0 || got.Delta != 0 {
		t.Errorf("empty BestComposition = %+v, want the slack-free basic {0, 0}", got)
	}

	var one Accountant
	one.Spend(Guarantee{Epsilon: 0.5})
	got = one.BestComposition(1e-6)
	if got.Epsilon != 0.5 || got.Delta != 0 {
		t.Errorf("single-spend BestComposition = %+v, want basic {0.5, 0}", got)
	}
}

// TestAccountantConcurrentSpend: Spend and the composition queries are
// documented as concurrency-safe; hammer them together (run with -race).
func TestAccountantConcurrentSpend(t *testing.T) {
	var a Accountant
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Spend(Guarantee{Epsilon: 0.01})
				_ = a.Count()
				_ = a.BasicComposition()
			}
		}()
	}
	wg.Wait()
	if a.Count() != workers*per {
		t.Errorf("Count = %d, want %d", a.Count(), workers*per)
	}
	want := 0.01 * float64(workers*per)
	if got := a.BasicComposition().Epsilon; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("BasicComposition = %v, want %v", got, want)
	}
}
