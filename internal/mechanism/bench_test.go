package mechanism

// Micro-benchmarks for the mechanism hot paths.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func benchData(n int) *dataset.Dataset {
	g := rng.New(1)
	return dataset.BernoulliTable{P: 0.5}.Generate(n, g)
}

func BenchmarkLaplaceRelease(b *testing.B) {
	d := benchData(1000)
	q := CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
	m, err := NewLaplace(q, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Release(d, g)
	}
}

func BenchmarkExponentialRelease(b *testing.B) {
	g := rng.New(3)
	d := &dataset.Dataset{}
	for i := 0; i < 500; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	m, _, err := PrivateMedian(0, mathx.Linspace(0, 1, 64), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Release(d, g)
	}
}

func BenchmarkExponentialLogProbabilities(b *testing.B) {
	g := rng.New(5)
	d := &dataset.Dataset{}
	for i := 0; i < 500; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	m, _, err := PrivateMedian(0, mathx.Linspace(0, 1, 64), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LogProbabilities(d)
	}
}

func BenchmarkPermuteAndFlipRelease(b *testing.B) {
	g := rng.New(7)
	scores := make([]float64, 64)
	for i := range scores {
		scores[i] = g.Normal(0, 2)
	}
	m, err := NewPermuteAndFlip(func(_ *dataset.Dataset, u int) float64 { return scores[u] }, 64, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := benchData(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Release(d, g)
	}
}

func BenchmarkMWEMRun(b *testing.B) {
	g := rng.New(9)
	domain := 16
	m, err := NewMWEM(domain, IntervalQueries(domain), 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := &dataset.Dataset{}
	for i := 0; i < 1000; i++ {
		d.Append(dataset.Example{X: []float64{float64(g.Intn(domain))}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(d, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccountantAdvanced(b *testing.B) {
	var a Accountant
	for i := 0; i < 200; i++ {
		a.Spend(Guarantee{Epsilon: 0.05})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AdvancedComposition(1e-6); err != nil {
			b.Fatal(err)
		}
	}
}
