package mechanism

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/mathx"
)

// ErrBudgetExhausted reports that admitting a release would push the
// accountant's composed guarantee past the configured budget. The
// pipeline checks it with errors.Is and applies the caller's
// DegradePolicy (refuse, fall back, or widen) instead of spending.
var ErrBudgetExhausted = errors.New("mechanism: privacy budget exhausted")

// composeCanonical returns the basic sequential composition of a
// multiset of guarantees — ε_total = Σ εᵢ, δ_total = Σ δᵢ — summed in
// the canonical order (ascending by ε, then δ) with Kahan compensation.
// The result is a pure function of the multiset, never of arrival
// order, which is what lets the budget admission decision and the
// ledger cross-check stay bit-identical across worker interleavings.
// The slice is sorted in place; callers pass a private copy.
func composeCanonical(gs []Guarantee) Guarantee {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Epsilon != gs[j].Epsilon { //dplint:ignore floateq canonical-order comparison: exact value ordering is the point
			return gs[i].Epsilon < gs[j].Epsilon
		}
		return gs[i].Delta < gs[j].Delta
	})
	var eps, del mathx.KahanSum
	for _, g := range gs {
		eps.Add(g.Epsilon)
		del.Add(g.Delta)
	}
	return Guarantee{Epsilon: eps.Sum(), Delta: del.Sum()}
}

// SetBudget installs a hard cap on the accountant's basic composition:
// every subsequent Reserve is admitted only if the composed guarantee
// of all spends, all held reservations, and the new request stays
// within the budget in both ε and δ. Already-recorded spends are not
// retroactively rejected, but they do count against the cap. A nil
// accountant ignores the call (nothing is enforced where nothing is
// accounted).
func (a *Accountant) SetBudget(g Guarantee) error {
	if a == nil {
		return nil
	}
	if math.IsNaN(g.Epsilon) || math.IsInf(g.Epsilon, 0) || g.Epsilon < 0 {
		return fmt.Errorf("mechanism: budget ε must be finite and non-negative, got %v", g.Epsilon)
	}
	if math.IsNaN(g.Delta) || g.Delta < 0 || g.Delta >= 1 {
		return fmt.Errorf("mechanism: budget δ must be in [0,1), got %v", g.Delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.budget = g
	a.hasBudget = true
	return nil
}

// ClearBudget removes the budget; Reserve admits everything again.
func (a *Accountant) ClearBudget() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.budget = Guarantee{}
	a.hasBudget = false
}

// Budget returns the configured budget and whether one is set.
func (a *Accountant) Budget() (Guarantee, bool) {
	if a == nil {
		return Guarantee{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget, a.hasBudget
}

// obligations returns the guarantees of every spend and every held
// reservation. Caller must hold a.mu.
func (a *Accountant) obligationsLocked() []Guarantee {
	gs := make([]Guarantee, 0, len(a.spent)+len(a.reserved))
	for _, r := range a.spent {
		gs = append(gs, r.Guarantee)
	}
	for _, res := range a.reserved {
		gs = append(gs, res.g)
	}
	return gs
}

// Remaining returns the budget headroom: the budget minus the canonical
// composition of all spends and held reservations, clamped at zero
// component-wise. The second result is false when no budget is set.
func (a *Accountant) Remaining() (Guarantee, bool) {
	if a == nil {
		return Guarantee{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.hasBudget {
		return Guarantee{}, false
	}
	used := composeCanonical(a.obligationsLocked())
	rem := Guarantee{Epsilon: a.budget.Epsilon - used.Epsilon, Delta: a.budget.Delta - used.Delta}
	if rem.Epsilon < 0 {
		rem.Epsilon = 0
	}
	if rem.Delta < 0 {
		rem.Delta = 0
	}
	return rem, true
}

// Reservation is a held claim on budget headroom: the first half of the
// two-phase spend protocol. Reserve admits the guarantee against the
// budget without charging the ledger; Commit converts the hold into a
// recorded spend once the release actually happened; Release abandons
// the hold so a failed release never charges the ledger. The intended
// shape is
//
//	res, err := acct.Reserve(g)
//	if err != nil { ... degrade ... }
//	defer res.Release() // no-op after Commit; frees the hold on panic
//	out := mech.Release(...)
//	res.Commit(meta)
//
// A nil *Reservation (from a nil accountant) is a valid no-op handle.
type Reservation struct {
	a *Accountant
	g Guarantee

	mu    sync.Mutex
	state resState
}

type resState int

const (
	resHeld resState = iota
	resCommitted
	resReleased
)

// Reserve admits a prospective release against the budget and returns a
// hold on it. If composing the request with every spend and every held
// reservation would exceed the budget in ε or δ, it returns an error
// wrapping ErrBudgetExhausted and holds nothing. With no budget set,
// Reserve always admits. On a nil accountant it returns (nil, nil):
// the nil Reservation's Commit and Release are no-ops, matching the
// nil-accountant contract of Spend.
//
// Admission is decided on the canonical composition of the obligation
// multiset, so the verdict for a given set of outstanding holds is
// deterministic — independent of the order concurrent reservations
// interleaved in.
func (a *Accountant) Reserve(g Guarantee) (*Reservation, error) {
	if a == nil {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hasBudget {
		prospective := append(a.obligationsLocked(), g)
		used := composeCanonical(prospective)
		if used.Epsilon > a.budget.Epsilon || used.Delta > a.budget.Delta {
			return nil, fmt.Errorf("mechanism: reserving (ε=%g, δ=%g) would compose to (ε=%g, δ=%g), over budget (ε=%g, δ=%g): %w",
				g.Epsilon, g.Delta, used.Epsilon, used.Delta, a.budget.Epsilon, a.budget.Delta, ErrBudgetExhausted)
		}
	}
	res := &Reservation{a: a, g: g}
	a.reserved = append(a.reserved, res)
	return res, nil
}

// Amount returns the reserved guarantee (zero on a nil reservation).
func (r *Reservation) Amount() Guarantee {
	if r == nil {
		return Guarantee{}
	}
	return r.g
}

// Commit converts the hold into a recorded spend: the reservation is
// removed from the outstanding set and a SpendRecord with the next
// sequence number is appended and forwarded to the observer, exactly as
// SpendDetail would. Committing a released reservation or committing
// twice is an API-misuse panic — it would double-charge the ledger.
// On a nil reservation Commit is a no-op.
func (r *Reservation) Commit(meta SpendMeta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case resCommitted:
		panic("mechanism: Reservation.Commit called twice")
	case resReleased:
		panic("mechanism: Reservation.Commit after Release")
	}
	r.state = resCommitted
	a := r.a
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dropReservationLocked(r)
	rec := SpendRecord{Seq: uint64(len(a.spent)), Guarantee: r.g, Meta: meta}
	a.spent = append(a.spent, rec)
	if a.observer != nil {
		a.observer(rec)
	}
}

// Release abandons the hold, returning its headroom to the budget with
// nothing charged to the ledger. After Commit (or a second Release) it
// is a no-op, so `defer res.Release()` is the canonical cleanup: it
// frees the reservation on every early-error and panic path and does
// nothing on the success path that committed. On a nil reservation it
// is a no-op.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != resHeld {
		return
	}
	r.state = resReleased
	r.a.mu.Lock()
	defer r.a.mu.Unlock()
	r.a.dropReservationLocked(r)
}

// dropReservationLocked removes one reservation by identity. Caller
// holds a.mu.
func (a *Accountant) dropReservationLocked(r *Reservation) {
	for i, held := range a.reserved {
		if held == r {
			a.reserved = append(a.reserved[:i], a.reserved[i+1:]...)
			return
		}
	}
}

// Reserved returns the number of outstanding (held, neither committed
// nor released) reservations.
func (a *Accountant) Reserved() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.reserved)
}
