package mechanism

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestReserveCommitRecordsSpend pins the two-phase happy path: Commit
// produces exactly the SpendRecord SpendDetail would have, sequence
// number and observer delivery included.
func TestReserveCommitRecordsSpend(t *testing.T) {
	var a Accountant
	var seen []SpendRecord
	a.SetObserver(func(r SpendRecord) { seen = append(seen, r) })
	g := Guarantee{Epsilon: 0.5}
	res, err := a.Reserve(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 0 {
		t.Fatalf("reservation charged the ledger early: Count = %d", a.Count())
	}
	if a.Reserved() != 1 {
		t.Fatalf("Reserved = %d, want 1", a.Reserved())
	}
	res.Commit(SpendMeta{Mechanism: "test"})
	if a.Count() != 1 || a.Reserved() != 0 {
		t.Fatalf("after commit: Count=%d Reserved=%d", a.Count(), a.Reserved())
	}
	recs := a.Records()
	if recs[0].Seq != 0 || recs[0].Guarantee != g || recs[0].Meta.Mechanism != "test" {
		t.Fatalf("bad record: %+v", recs[0])
	}
	if len(seen) != 1 || seen[0] != recs[0] {
		t.Fatalf("observer saw %+v, ledger has %+v", seen, recs)
	}
}

// TestReserveReleaseNeverCharges pins the "failed release never charges
// the ledger" half of the protocol.
func TestReserveReleaseNeverCharges(t *testing.T) {
	var a Accountant
	if err := a.SetBudget(Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Reserve(Guarantee{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	res.Release() // double release is a no-op
	if a.Count() != 0 || a.Reserved() != 0 {
		t.Fatalf("release charged something: Count=%d Reserved=%d", a.Count(), a.Reserved())
	}
	rem, ok := a.Remaining()
	if !ok || rem.Epsilon != 1 {
		t.Fatalf("headroom not returned: %+v ok=%v", rem, ok)
	}
	// The freed headroom is reusable.
	if _, err := a.Reserve(Guarantee{Epsilon: 1}); err != nil {
		t.Fatalf("freed headroom not reusable: %v", err)
	}
}

// TestBudgetEnforced pins admission: held reservations and recorded
// spends both count, and the over-budget request gets the typed
// sentinel.
func TestBudgetEnforced(t *testing.T) {
	var a Accountant
	if err := a.SetBudget(Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	r1, err := a.Reserve(Guarantee{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Reserve(Guarantee{Epsilon: 0.5}); err != nil {
		t.Fatalf("exact-budget composition must be admitted: %v", err)
	}
	if _, err := a.Reserve(Guarantee{Epsilon: 1e-6}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	r1.Commit(SpendMeta{})
	// Committed spend still counts against the cap.
	if _, err := a.Reserve(Guarantee{Epsilon: 1e-6}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spent ε must still count: %v", err)
	}
	// δ is enforced independently of ε.
	var b Accountant
	if err := b.SetBudget(Guarantee{Epsilon: 10, Delta: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Reserve(Guarantee{Epsilon: 0.1, Delta: 1e-6}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("δ over budget must be refused: %v", err)
	}
}

// TestReserveWithoutBudgetAdmitsAll pins that Reserve without SetBudget
// is pure bookkeeping.
func TestReserveWithoutBudgetAdmitsAll(t *testing.T) {
	var a Accountant
	for i := 0; i < 100; i++ {
		res, err := a.Reserve(Guarantee{Epsilon: 1000})
		if err != nil {
			t.Fatal(err)
		}
		res.Commit(SpendMeta{})
	}
	if a.Count() != 100 {
		t.Fatalf("Count = %d", a.Count())
	}
}

// TestNilAccountantReserve pins the nil-sink contract for the two-phase
// API: everything is a silent no-op, matching Spend.
func TestNilAccountantReserve(t *testing.T) {
	var a *Accountant
	res, err := a.Reserve(Guarantee{Epsilon: 1})
	if err != nil || res != nil {
		t.Fatalf("nil accountant Reserve = (%v, %v)", res, err)
	}
	res.Commit(SpendMeta{}) // nil reservation: must not panic
	res.Release()
	if res.Amount() != (Guarantee{}) {
		t.Fatal("nil reservation Amount not zero")
	}
	if err := a.SetBudget(Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Remaining(); ok {
		t.Fatal("nil accountant reports a budget")
	}
}

// TestReleaseAfterCommitIsNoop pins the `defer res.Release()` idiom: the
// deferred release on the success path must not undo the spend.
func TestReleaseAfterCommitIsNoop(t *testing.T) {
	var a Accountant
	res, _ := a.Reserve(Guarantee{Epsilon: 0.5})
	res.Commit(SpendMeta{})
	res.Release()
	if a.Count() != 1 {
		t.Fatalf("Release after Commit un-charged the ledger: Count=%d", a.Count())
	}
}

// TestCommitMisusePanics pins that half-spend hazards (commit twice,
// commit a released hold) are loud API-misuse panics, never silent
// ledger corruption.
func TestCommitMisusePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	var a Accountant
	r1, _ := a.Reserve(Guarantee{Epsilon: 1})
	r1.Commit(SpendMeta{})
	mustPanic("double commit", func() { r1.Commit(SpendMeta{}) })
	r2, _ := a.Reserve(Guarantee{Epsilon: 1})
	r2.Release()
	mustPanic("commit after release", func() { r2.Commit(SpendMeta{}) })
	if a.Count() != 1 {
		t.Fatalf("misuse mutated the ledger: Count=%d", a.Count())
	}
}

// TestSetBudgetValidation rejects non-finite and out-of-range budgets.
func TestSetBudgetValidation(t *testing.T) {
	var a Accountant
	bad := []Guarantee{
		{Epsilon: math.NaN()},
		{Epsilon: math.Inf(1)},
		{Epsilon: -1},
		{Epsilon: 1, Delta: math.NaN()},
		{Epsilon: 1, Delta: -1e-9},
		{Epsilon: 1, Delta: 1},
	}
	for _, g := range bad {
		if err := a.SetBudget(g); err == nil {
			t.Errorf("SetBudget(%+v) accepted", g)
		}
	}
	if _, ok := a.Budget(); ok {
		t.Fatal("rejected budget was installed")
	}
	if err := a.SetBudget(Guarantee{Epsilon: 2, Delta: 1e-6}); err != nil {
		t.Fatal(err)
	}
	if g, ok := a.Budget(); !ok || g.Epsilon != 2 {
		t.Fatalf("Budget = %+v, %v", g, ok)
	}
	a.ClearBudget()
	if _, ok := a.Budget(); ok {
		t.Fatal("ClearBudget left a budget")
	}
}

// TestReservePanicPathReleases simulates the chaos scenario from the
// issue: a worker reserves, then panics before committing. The deferred
// Release must free the hold so the budget is not leaked.
func TestReservePanicPathReleases(t *testing.T) {
	var a Accountant
	if err := a.SetBudget(Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		res, err := a.Reserve(Guarantee{Epsilon: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Release()
		panic("release failed mid-flight")
	}()
	if a.Count() != 0 || a.Reserved() != 0 {
		t.Fatalf("panic path leaked: Count=%d Reserved=%d", a.Count(), a.Reserved())
	}
	if _, err := a.Reserve(Guarantee{Epsilon: 1}); err != nil {
		t.Fatalf("budget leaked by panicked reservation: %v", err)
	}
}

// TestAdmissionIsOrderIndependent pins that the admission verdict is a
// pure function of the obligation multiset: whatever order the same
// holds were taken in, the next request sees the same answer.
func TestAdmissionIsOrderIndependent(t *testing.T) {
	gs := []Guarantee{{Epsilon: 0.3}, {Epsilon: 0.1}, {Epsilon: 0.25}}
	admit := func(order []int) error {
		var a Accountant
		if err := a.SetBudget(Guarantee{Epsilon: 0.7}); err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if _, err := a.Reserve(gs[i]); err != nil {
				t.Fatal(err)
			}
		}
		_, err := a.Reserve(Guarantee{Epsilon: 0.1})
		return err
	}
	errA := admit([]int{0, 1, 2})
	errB := admit([]int{2, 0, 1})
	errC := admit([]int{1, 2, 0})
	if (errA == nil) != (errB == nil) || (errB == nil) != (errC == nil) {
		t.Fatalf("order-dependent admission: %v / %v / %v", errA, errB, errC)
	}
	if !errors.Is(errA, ErrBudgetExhausted) {
		t.Fatalf("0.65 held + 0.1 over a 0.7 budget must be refused: %v", errA)
	}
}

// TestConcurrentReserveCommitRelease hammers the two-phase API from
// many goroutines with seeded-random interleavings (run under -race in
// CI). Invariants checked at the end: no outstanding holds, the ledger
// holds exactly the committed spends, the composed guarantee never
// exceeds the budget, and sequence numbers are a gapless total order.
func TestConcurrentReserveCommitRelease(t *testing.T) {
	const (
		workers   = 8
		perWorker = 200
	)
	var a Accountant
	budget := Guarantee{Epsilon: 25}
	if err := a.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var observed []SpendRecord
	a.SetObserver(func(r SpendRecord) {
		mu.Lock()
		observed = append(observed, r)
		mu.Unlock()
	})

	var committed, denied, released, panicked [workers]int
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			g := rng.New(int64(1000 + slot))
			for i := 0; i < perWorker; i++ {
				eps := 0.05 + 0.2*g.Float64()
				res, err := a.Reserve(Guarantee{Epsilon: eps})
				if err != nil {
					if !errors.Is(err, ErrBudgetExhausted) {
						t.Errorf("worker %d: unexpected error %v", slot, err)
					}
					denied[slot]++
					continue
				}
				switch g.Intn(3) {
				case 0: // release: a failed mechanism run
					res.Release()
					released[slot]++
				case 1: // panic mid-release, deferred cleanup
					func() {
						defer func() { recover() }()
						defer res.Release()
						panic("injected")
					}()
					panicked[slot]++
				default:
					res.Commit(SpendMeta{Mechanism: "race"})
					released[slot]++ // exercise no-op Release after Commit
					res.Release()
					committed[slot]++
				}
			}
		}(w)
	}
	wg.Wait()

	totalCommitted := 0
	for _, c := range committed {
		totalCommitted += c
	}
	if a.Reserved() != 0 {
		t.Fatalf("outstanding holds leaked: %d", a.Reserved())
	}
	if a.Count() != totalCommitted {
		t.Fatalf("ledger count %d != committed %d (double- or half-spend)", a.Count(), totalCommitted)
	}
	if len(observed) != totalCommitted {
		t.Fatalf("observer saw %d records, want %d", len(observed), totalCommitted)
	}
	composed := a.BasicComposition()
	if composed.Epsilon > budget.Epsilon || composed.Delta > budget.Delta {
		t.Fatalf("budget violated: composed %+v > budget %+v", composed, budget)
	}
	seqs := make(map[uint64]bool, totalCommitted)
	for _, r := range a.Records() {
		seqs[r.Seq] = true
	}
	for i := 0; i < totalCommitted; i++ {
		if !seqs[uint64(i)] {
			t.Fatalf("sequence gap at %d", i)
		}
	}
}
