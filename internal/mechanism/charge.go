package mechanism

import "context"

// chargeScopeKey carries the durable-charge scope id of the request a
// context belongs to. The serve layer opens a scope per WAL-logged
// request; facade commit sites stamp SpendMeta.Charge from it, so the
// exact guarantees a request commits — which may differ in the low bits
// from its quoted ε (a widened fit charges the remaining headroom, a
// Gibbs density its recalibrated 2·Δq·(ε/2Δq)) — can be collected onto
// the request's write-ahead commit record bit for bit.
type chargeScopeKey struct{}

// WithChargeScope returns ctx carrying the charge scope id.
func WithChargeScope(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, chargeScopeKey{}, id)
}

// ChargeScopeFrom returns the charge scope id carried by ctx ("" when
// the request is not durably logged).
func ChargeScopeFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(chargeScopeKey{}).(string)
	return id
}
