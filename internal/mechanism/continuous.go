package mechanism

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// This file implements the CONTINUOUS exponential mechanism of the
// paper's Section 2 — "dπ′(r) ∝ exp(ε·q(x,u)) dπ(r)" with a base measure
// π on a real interval — for the important special case where the quality
// function is piecewise constant between data points (rank-based
// qualities such as the median's). There the density is exactly
// integrable piece by piece, so sampling is exact: pick a piece with
// probability ∝ length·exp(ε·q), then uniformly within it. No grid, no
// MCMC, no discretization error.

// IntervalMechanism is an exponential mechanism over the real interval
// [Lo, Hi] with a piecewise-constant quality function and the Lebesgue
// base measure.
type IntervalMechanism struct {
	// Lo, Hi bound the output range.
	Lo, Hi float64
	// Breaks are the (sorted, deduplicated) discontinuity points strictly
	// inside (Lo, Hi); the quality is constant on each piece between
	// consecutive breakpoints.
	Breaks []float64
	// PieceQuality[i] is the quality on piece i (between break i−1 and
	// break i, with pieces 0 and len(Breaks) touching Lo and Hi).
	PieceQuality []float64
	// Sensitivity is Δq, the replace-one sensitivity of the quality.
	Sensitivity float64
	// Epsilon is the mechanism parameter ε in exp(ε·q); the guarantee is
	// 2εΔq (Theorem 2.2).
	Epsilon float64
}

// ErrBadInterval is returned for malformed interval configurations.
var ErrBadInterval = errors.New("mechanism: invalid interval mechanism")

// NewIntervalMechanism validates the pieces: len(PieceQuality) must be
// len(Breaks)+1, breaks strictly increasing inside (Lo, Hi).
func NewIntervalMechanism(lo, hi float64, breaks, pieceQuality []float64, sensitivity, epsilon float64) (*IntervalMechanism, error) {
	if hi <= lo {
		return nil, ErrBadInterval
	}
	if len(pieceQuality) != len(breaks)+1 {
		return nil, ErrBadInterval
	}
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	prev := lo
	for _, b := range breaks {
		if b <= prev || b >= hi {
			return nil, ErrBadInterval
		}
		prev = b
	}
	return &IntervalMechanism{
		Lo: lo, Hi: hi,
		Breaks:       append([]float64(nil), breaks...),
		PieceQuality: append([]float64(nil), pieceQuality...),
		Sensitivity:  sensitivity,
		Epsilon:      epsilon,
	}, nil
}

// pieceEdges returns the boundaries of piece i: [a, b).
func (m *IntervalMechanism) pieceEdges(i int) (float64, float64) {
	a := m.Lo
	if i > 0 {
		a = m.Breaks[i-1]
	}
	b := m.Hi
	if i < len(m.Breaks) {
		b = m.Breaks[i]
	}
	return a, b
}

// logPieceMasses returns the unnormalized log-mass of each piece:
// log(length) + ε·quality.
func (m *IntervalMechanism) logPieceMasses() []float64 {
	out := make([]float64, len(m.PieceQuality))
	for i := range out {
		a, b := m.pieceEdges(i)
		if b <= a {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = math.Log(b-a) + m.Epsilon*m.PieceQuality[i]
	}
	return out
}

// Release samples one real output exactly from the mechanism's density.
func (m *IntervalMechanism) Release(g *rng.RNG) float64 {
	i := g.CategoricalLog(m.logPieceMasses())
	a, b := m.pieceEdges(i)
	return g.Uniform(a, b)
}

// LogDensity returns the exact log-density of the mechanism at x
// (−Inf outside [Lo, Hi]).
func (m *IntervalMechanism) LogDensity(x float64) float64 {
	if x < m.Lo || x > m.Hi {
		return math.Inf(-1)
	}
	masses := m.logPieceMasses()
	logZ := mathx.LogSumExp(masses)
	// Find the piece containing x.
	i := sort.SearchFloat64s(m.Breaks, x)
	return m.Epsilon*m.PieceQuality[i] - logZ
}

// Guarantee returns the 2εΔq guarantee of Theorem 2.2.
func (m *IntervalMechanism) Guarantee() Guarantee {
	return Guarantee{Epsilon: 2 * m.Epsilon * m.Sensitivity}
}

// MaxLogDensityRatio returns the exact realized privacy loss between two
// interval mechanisms with identical geometry (same Lo/Hi/Breaks):
// sup over x of |log f₁(x) − log f₂(x)|. It is the continuous-output
// analogue of audit.ExactEpsilon. Mechanisms with different breakpoints
// return +Inf only when a piece of one has zero mass where the other
// doesn't — with shared geometry this cannot happen.
func MaxLogDensityRatio(m1, m2 *IntervalMechanism) (float64, error) {
	//dplint:ignore floateq shared-geometry precondition: both mechanisms must carry bitwise-identical endpoints
	if m1.Lo != m2.Lo || m1.Hi != m2.Hi || len(m1.Breaks) != len(m2.Breaks) {
		return 0, ErrBadInterval
	}
	for i := range m1.Breaks {
		if m1.Breaks[i] != m2.Breaks[i] { //dplint:ignore floateq shared-geometry precondition: breakpoints must be bitwise-identical copies
			return 0, ErrBadInterval
		}
	}
	z1 := mathx.LogSumExp(m1.logPieceMasses())
	z2 := mathx.LogSumExp(m2.logPieceMasses())
	var worst float64
	for i := range m1.PieceQuality {
		d := math.Abs((m1.Epsilon*m1.PieceQuality[i] - z1) - (m2.Epsilon*m2.PieceQuality[i] - z2))
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// ContinuousMedian builds the exact continuous exponential mechanism for
// the median of feature j over [lo, hi]: quality at x is
// −|#{records < x} − n/2|, which is piecewise constant between the
// (clamped) data values with sensitivity 1. The release is 2ε-DP and
// needs no candidate grid.
func ContinuousMedian(d *dataset.Dataset, j int, lo, hi, epsilon float64) (*IntervalMechanism, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("mechanism: ContinuousMedian needs a non-empty dataset")
	}
	if hi <= lo {
		return nil, ErrBadInterval
	}
	n := d.Len()
	values := make([]float64, 0, n)
	for _, e := range d.Examples {
		values = append(values, mathx.Clamp(e.X[j], lo, hi))
	}
	sort.Float64s(values)
	// Breakpoints: distinct values strictly inside (lo, hi).
	breaks := make([]float64, 0, n)
	for _, v := range values {
		if v <= lo || v >= hi {
			continue
		}
		if len(breaks) == 0 || breaks[len(breaks)-1] != v { //dplint:ignore floateq dedup scan over sorted clamped values: duplicates are bitwise copies
			breaks = append(breaks, v)
		}
	}
	// Quality on each piece: for x in piece i, #{values < x} is constant;
	// evaluate just right of the piece's left edge.
	quality := make([]float64, len(breaks)+1)
	for i := range quality {
		a, _ := pieceEdgesOf(lo, hi, breaks, i)
		below := sort.SearchFloat64s(values, math.Nextafter(a, hi))
		// count of values < x for x slightly above a: values <= a.
		quality[i] = -math.Abs(float64(below) - float64(n)/2)
	}
	return NewIntervalMechanism(lo, hi, breaks, quality, 1, epsilon)
}

// pieceEdgesOf mirrors IntervalMechanism.pieceEdges for construction.
func pieceEdgesOf(lo, hi float64, breaks []float64, i int) (float64, float64) {
	a := lo
	if i > 0 {
		a = breaks[i-1]
	}
	b := hi
	if i < len(breaks) {
		b = breaks[i]
	}
	return a, b
}
