package mechanism

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestIntervalMechanismValidation(t *testing.T) {
	if _, err := NewIntervalMechanism(1, 0, nil, []float64{0}, 1, 1); err != ErrBadInterval {
		t.Error("hi <= lo")
	}
	if _, err := NewIntervalMechanism(0, 1, []float64{0.5}, []float64{0}, 1, 1); err != ErrBadInterval {
		t.Error("piece count mismatch")
	}
	if _, err := NewIntervalMechanism(0, 1, []float64{0.5, 0.4}, []float64{0, 1, 2}, 1, 1); err != ErrBadInterval {
		t.Error("unsorted breaks")
	}
	if _, err := NewIntervalMechanism(0, 1, []float64{1.5}, []float64{0, 1}, 1, 1); err != ErrBadInterval {
		t.Error("break outside interval")
	}
	if _, err := NewIntervalMechanism(0, 1, nil, []float64{0}, 0, 1); err != ErrInvalidSensitivity {
		t.Error("sensitivity")
	}
	if _, err := NewIntervalMechanism(0, 1, nil, []float64{0}, 1, 0); err != ErrInvalidEpsilon {
		t.Error("epsilon")
	}
}

func TestIntervalMechanismDensityNormalizes(t *testing.T) {
	m, err := NewIntervalMechanism(0, 2, []float64{0.5, 1.2}, []float64{-1, 0, -3}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Numerically integrate exp(LogDensity) over [0, 2].
	const steps = 200_000
	var k mathx.KahanSum
	h := 2.0 / steps
	for i := 0; i < steps; i++ {
		x := (float64(i) + 0.5) * h
		k.Add(math.Exp(m.LogDensity(x)) * h)
	}
	if !mathx.AlmostEqual(k.Sum(), 1, 1e-4) {
		t.Errorf("density integrates to %v", k.Sum())
	}
	if !math.IsInf(m.LogDensity(-0.1), -1) || !math.IsInf(m.LogDensity(2.1), -1) {
		t.Error("outside support must have zero density")
	}
}

func TestIntervalMechanismSamplesMatchDensity(t *testing.T) {
	m, err := NewIntervalMechanism(0, 1, []float64{0.25, 0.75}, []float64{0, 2, -1}, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(1)
	nSamp := 300_000
	samples := make([]float64, nSamp)
	for i := range samples {
		samples[i] = m.Release(g)
		if samples[i] < 0 || samples[i] > 1 {
			t.Fatalf("sample %v out of range", samples[i])
		}
	}
	// Empirical piece masses vs exact.
	sort.Float64s(samples)
	countIn := func(a, b float64) float64 {
		return float64(sort.SearchFloat64s(samples, b)-sort.SearchFloat64s(samples, a)) / float64(nSamp)
	}
	masses := mathx.ExpNormalize(m.logPieceMasses())
	for i, want := range masses {
		a, b := m.pieceEdges(i)
		if got := countIn(a, b); math.Abs(got-want) > 0.01 {
			t.Errorf("piece %d: sampled %v, exact %v", i, got, want)
		}
	}
}

func TestContinuousMedianAccuracy(t *testing.T) {
	g := rng.New(3)
	d := &dataset.Dataset{}
	for i := 0; i < 201; i++ {
		d.Append(dataset.Example{X: []float64{mathx.Clamp(g.Normal(0.6, 0.05), 0, 1)}})
	}
	m, err := ContinuousMedian(d, 0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	trueMed := stats.Median(d.Feature(0))
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if math.Abs(m.Release(g)-trueMed) < 0.05 {
			hits++
		}
	}
	if float64(hits)/trials < 0.9 {
		t.Errorf("continuous private median near truth only %d/%d", hits, trials)
	}
}

func TestContinuousMedianExactPrivacy(t *testing.T) {
	// Neighbors that move one record: the density ratio must respect
	// 2εΔq everywhere. To compare densities with MaxLogDensityRatio the
	// two mechanisms need shared geometry, so replace a record with
	// another EXISTING value (a duplicate) — breakpoints are unchanged.
	g := rng.New(5)
	eps := 0.6
	d := &dataset.Dataset{}
	for i := 0; i < 51; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	// Replace record 0 by a duplicate of record 1's value.
	nb := d.ReplaceOne(0, dataset.Example{X: []float64{d.Examples[1].X[0]}})
	m1, err := ContinuousMedian(d, 0, 0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ContinuousMedian(nb, 0, 0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Geometry may differ by the removed breakpoint; only audit when the
	// geometry matches (the duplicate keeps record 0's old value as a
	// breakpoint only if another record shares it — check and skip
	// gracefully otherwise by refining both to common breaks).
	got, err := MaxLogDensityRatio(m1, m2)
	if err != nil {
		t.Skip("geometry differs; covered by the sampled audit below")
	}
	budget := m1.Guarantee().Epsilon
	if got > budget+1e-9 {
		t.Errorf("density ratio %v exceeds budget %v", got, budget)
	}
}

func TestContinuousMedianSampledPrivacy(t *testing.T) {
	// General neighbor pair (geometry changes): sampled histogram audit.
	g := rng.New(7)
	eps := 1.0
	d := &dataset.Dataset{}
	for i := 0; i < 41; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	nb := d.ReplaceOne(0, dataset.Example{X: []float64{0.99}})
	m1, err := ContinuousMedian(d, 0, 0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ContinuousMedian(nb, 0, 0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	budget := m1.Guarantee().Epsilon // 2ε
	trials := 150_000
	bins := 25
	c1 := make([]int, bins)
	c2 := make([]int, bins)
	for i := 0; i < trials; i++ {
		c1[int(m1.Release(g)*float64(bins))%bins]++
		c2[int(m2.Release(g)*float64(bins))%bins]++
	}
	for b := 0; b < bins; b++ {
		if c1[b] < 500 || c2[b] < 500 {
			continue
		}
		ratio := math.Abs(math.Log(float64(c1[b]) / float64(c2[b])))
		if ratio > budget+0.15 {
			t.Errorf("bin %d: |log ratio| %v exceeds budget %v", b, ratio, budget)
		}
	}
}

func TestContinuousMedianMatchesGridLimit(t *testing.T) {
	// A very fine grid-based PrivateMedian should approximate the
	// continuous mechanism's piece masses.
	g := rng.New(9)
	d := &dataset.Dataset{}
	for i := 0; i < 21; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	eps := 2.0
	cont, err := ContinuousMedian(d, 0, 0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	grid := mathx.Linspace(0.0005, 0.9995, 1000)
	disc, vals, err := PrivateMedian(0, grid, eps)
	if err != nil {
		t.Fatal(err)
	}
	// Compare P(output <= 0.5) under both.
	logp := disc.LogProbabilities(d)
	var discMass float64
	for i, v := range vals {
		if v <= 0.5 {
			discMass += math.Exp(logp[i])
		}
	}
	var contMass float64
	const trials = 200_000
	for i := 0; i < trials; i++ {
		if cont.Release(g) <= 0.5 {
			contMass++
		}
	}
	contMass /= trials
	if math.Abs(discMass-contMass) > 0.02 {
		t.Errorf("P(median<=0.5): grid %v vs continuous %v", discMass, contMass)
	}
}

func TestContinuousMedianValidation(t *testing.T) {
	if _, err := ContinuousMedian(&dataset.Dataset{}, 0, 0, 1, 1); err == nil {
		t.Error("empty dataset")
	}
	g := rng.New(11)
	d := dataset.BernoulliTable{P: 0.5}.Generate(5, g)
	if _, err := ContinuousMedian(d, 0, 1, 0, 1); err != ErrBadInterval {
		t.Error("hi <= lo")
	}
	// All values identical (all clamp to an endpoint): single piece.
	same := dataset.New([]dataset.Example{{X: []float64{2}}, {X: []float64{3}}})
	m, err := ContinuousMedian(same, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Breaks) != 0 {
		t.Errorf("clamped-to-endpoint data should have no interior breaks: %v", m.Breaks)
	}
	if v := m.Release(g); v < 0 || v > 1 {
		t.Errorf("release %v", v)
	}
}
