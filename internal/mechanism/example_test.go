package mechanism_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// ExampleLaplace releases a private count with the Laplace mechanism of
// Theorem 2.1.
func ExampleLaplace() {
	g := rng.New(42)
	d := dataset.BernoulliTable{}.FromBits([]int{1, 1, 0, 1, 0, 1, 1, 0, 0, 1})
	q := mechanism.CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
	m, err := mechanism.NewLaplace(q, 1.0)
	if err != nil {
		panic(err)
	}
	noisy := m.Release(d, g)
	fmt.Printf("guarantee: %s\n", m.Guarantee())
	fmt.Printf("true count 6, private count within 10: %v\n", mathx.AlmostEqual(noisy[0], 6, 10))
	// Output:
	// guarantee: 1-DP
	// true count 6, private count within 10: true
}

// ExampleExponential selects a private median (Theorem 2.2).
func ExampleExponential() {
	g := rng.New(7)
	d := &dataset.Dataset{}
	for i := 0; i < 101; i++ {
		d.Append(dataset.Example{X: []float64{mathx.Clamp(g.Normal(0.5, 0.05), 0, 1)}})
	}
	m, grid, err := mechanism.PrivateMedian(0, mathx.Linspace(0, 1, 21), 5)
	if err != nil {
		panic(err)
	}
	med := grid[m.Release(d, g)]
	fmt.Printf("guarantee: %s\n", m.Guarantee())
	fmt.Printf("median near 0.5: %v\n", med > 0.35 && med < 0.65)
	// Output:
	// guarantee: 10-DP
	// median near 0.5: true
}

// ExampleAccountant composes the cost of several releases.
func ExampleAccountant() {
	var a mechanism.Accountant
	for i := 0; i < 50; i++ {
		a.Spend(mechanism.Guarantee{Epsilon: 0.1})
	}
	basic := a.BasicComposition()
	best := a.BestComposition(1e-6)
	fmt.Printf("basic: %s\n", basic)
	fmt.Printf("advanced is tighter: %v\n", best.Epsilon < basic.Epsilon)
	// Output:
	// basic: 5-DP
	// advanced is tighter: true
}
