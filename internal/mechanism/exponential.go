package mechanism

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// Exponential is the exponential mechanism of McSherry & Talwar
// (Theorem 2.2 of the paper) over a finite candidate set indexed
// 0..NumCandidates−1: it selects candidate u with probability
// proportional to Prior(u)·exp(ε·q(D, u)), which is 2εΔq-differentially
// private, where Δq is the global sensitivity of the quality function.
//
// The paper's central observation (Theorem 4.1) instantiates this with
// q = −R̂ (negative empirical risk) to obtain the Gibbs posterior; package
// gibbs builds on the same sampler.
type Exponential struct {
	// Quality scores candidate u on dataset d (higher is better).
	Quality func(d *dataset.Dataset, u int) float64
	// NumCandidates is the size of the output range.
	NumCandidates int
	// Sensitivity is Δq, the global sensitivity of Quality over
	// neighboring datasets, uniform in u.
	Sensitivity float64
	// Epsilon is the mechanism parameter ε in exp(ε·q). Per Theorem 2.2
	// the privacy guarantee is 2·ε·Δq.
	Epsilon float64
	// LogPrior is the optional base measure π on candidates (unnormalized
	// log-mass). Nil means uniform.
	LogPrior []float64
}

// NewExponential validates and constructs an exponential mechanism.
func NewExponential(quality func(*dataset.Dataset, int) float64, numCandidates int, sensitivity, epsilon float64) (*Exponential, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	if numCandidates <= 0 {
		return nil, errors.New("mechanism: exponential mechanism needs at least one candidate")
	}
	return &Exponential{
		Quality:       quality,
		NumCandidates: numCandidates,
		Sensitivity:   sensitivity,
		Epsilon:       epsilon,
	}, nil
}

// LogWeights returns the unnormalized log selection weights
// log π(u) + ε·q(D, u) for every candidate.
func (m *Exponential) LogWeights(d *dataset.Dataset) []float64 {
	out := make([]float64, m.NumCandidates)
	for u := 0; u < m.NumCandidates; u++ {
		out[u] = m.Epsilon * m.Quality(d, u)
		if m.LogPrior != nil {
			out[u] += m.LogPrior[u]
		}
	}
	return out
}

// LogProbabilities returns the exact normalized log output distribution
// of the mechanism on dataset d. This exposes the mechanism's full
// conditional distribution p(u|D) — the channel row used by the exact
// privacy audit and the Figure-1 channel construction.
func (m *Exponential) LogProbabilities(d *dataset.Dataset) []float64 {
	normalized, _ := mathx.LogNormalize(m.LogWeights(d))
	return normalized
}

// Release samples one candidate index.
func (m *Exponential) Release(d *dataset.Dataset, g *rng.RNG) int {
	return g.CategoricalLog(m.LogWeights(d))
}

// Guarantee returns the 2εΔq guarantee of Theorem 2.2.
func (m *Exponential) Guarantee() Guarantee {
	return Guarantee{Epsilon: 2 * m.Epsilon * m.Sensitivity}
}

// UtilityBound returns the McSherry–Talwar utility guarantee: with
// probability at least 1−β, the selected candidate's quality is within
//
//	(ln(|U|) + ln(1/β)) / ε
//
// of the optimum (for a uniform prior).
func (m *Exponential) UtilityBound(beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("mechanism: UtilityBound requires beta in (0,1)")
	}
	return (math.Log(float64(m.NumCandidates)) + math.Log(1/beta)) / m.Epsilon
}

// PrivateMedian returns an exponential mechanism selecting a private
// median of feature j from the given candidate grid. The quality of
// candidate c is −|#{x < c} − n/2| (higher when c splits the data evenly),
// whose sensitivity under replace-one neighbors is 1.
func PrivateMedian(j int, candidates []float64, epsilon float64) (*Exponential, []float64, error) {
	if len(candidates) == 0 {
		return nil, nil, errors.New("mechanism: PrivateMedian needs candidates")
	}
	grid := append([]float64(nil), candidates...)
	//dp:sensitivity Δq=1 (replace-one moves the below-count by at most 1; |·| is 1-Lipschitz)
	quality := func(d *dataset.Dataset, u int) float64 {
		c := grid[u]
		var below float64
		for _, e := range d.Examples {
			if e.X[j] < c {
				below++
			}
		}
		return -math.Abs(below - float64(d.Len())/2)
	}
	m, err := NewExponential(quality, len(grid), 1, epsilon)
	if err != nil {
		return nil, nil, err
	}
	return m, grid, nil
}

// PrivateMode returns an exponential mechanism selecting the most common
// value of a discrete feature j among the given candidate values. Quality
// is the count of exact matches (sensitivity 1 under replace-one).
func PrivateMode(j int, values []float64, epsilon float64) (*Exponential, []float64, error) {
	if len(values) == 0 {
		return nil, nil, errors.New("mechanism: PrivateMode needs candidate values")
	}
	vals := append([]float64(nil), values...)
	//dp:sensitivity Δq=1 (replace-one changes the match count by at most 1)
	quality := func(d *dataset.Dataset, u int) float64 {
		var c float64
		for _, e := range d.Examples {
			if e.X[j] == vals[u] { //dplint:ignore floateq discrete feature: candidate values are exact codes copied from the data
				c++
			}
		}
		return c
	}
	m, err := NewExponential(quality, len(vals), 1, epsilon)
	if err != nil {
		return nil, nil, err
	}
	return m, vals, nil
}

// ReportNoisyMax selects the index of the highest quality score after
// adding Laplace(2Δq/ε) noise to each score; it is ε-DP. It is the
// classical alternative to the exponential mechanism for private
// selection.
type ReportNoisyMax struct {
	Quality       func(d *dataset.Dataset, u int) float64
	NumCandidates int
	Sensitivity   float64
	Epsilon       float64
}

// NewReportNoisyMax validates and constructs the mechanism.
func NewReportNoisyMax(quality func(*dataset.Dataset, int) float64, numCandidates int, sensitivity, epsilon float64) (*ReportNoisyMax, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	if numCandidates <= 0 {
		return nil, errors.New("mechanism: ReportNoisyMax needs at least one candidate")
	}
	return &ReportNoisyMax{Quality: quality, NumCandidates: numCandidates, Sensitivity: sensitivity, Epsilon: epsilon}, nil
}

// Release returns the arg-max index of the noised scores.
func (m *ReportNoisyMax) Release(d *dataset.Dataset, g *rng.RNG) int {
	best, bestIdx := math.Inf(-1), 0
	scale := 2 * m.Sensitivity / m.Epsilon
	for u := 0; u < m.NumCandidates; u++ {
		v := m.Quality(d, u) + g.Laplace(0, scale)
		if v > best {
			best, bestIdx = v, u
		}
	}
	return bestIdx
}

// Guarantee returns (ε, 0).
func (m *ReportNoisyMax) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }
