// Package mechanism implements the differentially-private release
// mechanisms of Section 2 of the paper: the Laplace mechanism calibrated
// to global sensitivity (Dwork et al. 2006; Theorem 2.1), the exponential
// mechanism of McSherry & Talwar (Theorem 2.2), and the companion
// mechanisms any practical DP toolkit carries (Gaussian, geometric /
// discrete Laplace, randomized response, report-noisy-max), plus a
// composition accountant.
//
// The privacy parameter follows Definition 2.1: a randomized function f is
// ε-differentially private if for all neighboring datasets D, D′ and all
// measurable Y, Pr[f(D) ∈ Y] ≤ e^ε · Pr[f(D′) ∈ Y]. Neighbors here use
// the paper's replace-one relation (dataset.ReplaceOne).
package mechanism

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// ErrInvalidEpsilon is returned when a non-positive ε is supplied.
var ErrInvalidEpsilon = errors.New("mechanism: epsilon must be positive")

// ErrInvalidSensitivity is returned when a non-positive sensitivity is
// supplied.
var ErrInvalidSensitivity = errors.New("mechanism: sensitivity must be positive")

// Guarantee records an (ε, δ)-differential-privacy guarantee. δ = 0 is
// pure ε-DP.
type Guarantee struct {
	Epsilon float64
	Delta   float64
}

// String renders the guarantee.
func (g Guarantee) String() string {
	if g.Delta == 0 { //dplint:ignore floateq pure eps-DP is encoded as bitwise delta=0; no arithmetic ever perturbs it
		return fmt.Sprintf("%.6g-DP", g.Epsilon)
	}
	return fmt.Sprintf("(%.6g, %.3g)-DP", g.Epsilon, g.Delta)
}

// NumericQuery is a vector-valued statistical query with known global
// sensitivities. Definition 2.2 of the paper: Δf = max over neighboring
// D, D′ of ‖f(D) − f(D′)‖₁.
type NumericQuery struct {
	// F evaluates the query on a dataset.
	F func(*dataset.Dataset) []float64
	// L1Sensitivity is the global L1 sensitivity Δf (for Laplace).
	L1Sensitivity float64
	// L2Sensitivity is the global L2 sensitivity (for Gaussian). Zero
	// means "not provided".
	L2Sensitivity float64
}

// CountQuery returns the query counting records for which pred is true.
// Its L1 (and L2) sensitivity under replace-one neighbors is 1.
func CountQuery(pred func(dataset.Example) bool) NumericQuery {
	return NumericQuery{
		F: func(d *dataset.Dataset) []float64 {
			var c float64
			for _, e := range d.Examples {
				if pred(e) {
					c++
				}
			}
			return []float64{c}
		},
		L1Sensitivity: 1,
		L2Sensitivity: 1,
	}
}

// BoundedMeanQuery returns the query computing the mean of feature j with
// each value clamped into [lo, hi]. Replacing one record moves the mean by
// at most (hi−lo)/n, which is the query's sensitivity (n must be the fixed
// dataset size under replace-one neighbors).
func BoundedMeanQuery(j int, lo, hi float64, n int) NumericQuery {
	if hi <= lo || n <= 0 {
		panic("mechanism: BoundedMeanQuery requires hi > lo and n > 0")
	}
	sens := (hi - lo) / float64(n)
	return NumericQuery{
		F: func(d *dataset.Dataset) []float64 {
			var s float64
			for _, e := range d.Examples {
				v := e.X[j]
				if v < lo {
					v = lo
				}
				if v > hi {
					v = hi
				}
				s += v
			}
			return []float64{s / float64(d.Len())}
		},
		L1Sensitivity: sens,
		L2Sensitivity: sens,
	}
}

// HistogramQuery returns the query computing clamped histogram counts of
// feature j over [lo, hi) with the given number of bins. Under replace-one
// neighbors at most two bins change by one each, so ΔL1 = 2 (ΔL2 = √2).
func HistogramQuery(j, bins int, lo, hi float64) NumericQuery {
	if bins <= 0 || hi <= lo {
		panic("mechanism: HistogramQuery requires bins > 0 and hi > lo")
	}
	return NumericQuery{
		F: func(d *dataset.Dataset) []float64 {
			counts := make([]float64, bins)
			for _, e := range d.Examples {
				idx := int(math.Floor((e.X[j] - lo) / (hi - lo) * float64(bins)))
				if idx < 0 {
					idx = 0
				}
				if idx >= bins {
					idx = bins - 1
				}
				counts[idx]++
			}
			return counts
		},
		L1Sensitivity: 2,
		L2Sensitivity: math.Sqrt2,
	}
}

// Laplace is the Laplace mechanism of Theorem 2.1: it releases
// f(D) + Lap(Δf/ε)^d, which is ε-differentially private.
type Laplace struct {
	Query   NumericQuery
	Epsilon float64
}

// NewLaplace validates and constructs a Laplace mechanism.
func NewLaplace(q NumericQuery, epsilon float64) (*Laplace, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if q.L1Sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	return &Laplace{Query: q, Epsilon: epsilon}, nil
}

// Scale returns the noise scale b = Δf/ε.
func (m *Laplace) Scale() float64 { return m.Query.L1Sensitivity / m.Epsilon }

// Release evaluates the query and adds independent Laplace noise to each
// coordinate.
func (m *Laplace) Release(d *dataset.Dataset, g *rng.RNG) []float64 {
	out := m.Query.F(d)
	b := m.Scale()
	for i := range out {
		out[i] += g.Laplace(0, b)
	}
	return out
}

// Guarantee returns the mechanism's privacy guarantee (ε, 0).
func (m *Laplace) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// Gaussian is the Gaussian mechanism: f(D) + N(0, σ²)^d with
// σ = Δ₂f·sqrt(2 ln(1.25/δ))/ε, which is (ε, δ)-DP for ε ≤ 1. It is
// included for completeness of the mechanism family the paper situates
// itself in; the paper itself only uses pure ε-DP.
type Gaussian struct {
	Query   NumericQuery
	Epsilon float64
	Delta   float64
}

// NewGaussian validates and constructs a Gaussian mechanism.
func NewGaussian(q NumericQuery, epsilon, delta float64) (*Gaussian, error) {
	if epsilon <= 0 || epsilon > 1 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("%w (Gaussian requires 0 < ε ≤ 1)", ErrInvalidEpsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, errors.New("mechanism: Gaussian requires 0 < δ < 1")
	}
	if q.L2Sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	return &Gaussian{Query: q, Epsilon: epsilon, Delta: delta}, nil
}

// Sigma returns the noise standard deviation.
func (m *Gaussian) Sigma() float64 {
	return m.Query.L2Sensitivity * math.Sqrt(2*math.Log(1.25/m.Delta)) / m.Epsilon
}

// Release evaluates the query and adds Gaussian noise.
func (m *Gaussian) Release(d *dataset.Dataset, g *rng.RNG) []float64 {
	out := m.Query.F(d)
	sigma := m.Sigma()
	for i := range out {
		out[i] += g.Normal(0, sigma)
	}
	return out
}

// Guarantee returns (ε, δ).
func (m *Gaussian) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon, Delta: m.Delta} }

// Geometric is the geometric mechanism (discrete Laplace): for an
// integer-valued query with sensitivity Δ it adds two-sided geometric
// noise with parameter α = exp(−ε/Δ), giving ε-DP on integer outputs.
type Geometric struct {
	Query       func(*dataset.Dataset) int64
	Sensitivity int64
	Epsilon     float64
}

// NewGeometric validates and constructs a geometric mechanism.
func NewGeometric(q func(*dataset.Dataset) int64, sensitivity int64, epsilon float64) (*Geometric, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	return &Geometric{Query: q, Sensitivity: sensitivity, Epsilon: epsilon}, nil
}

// Release evaluates the query and adds two-sided geometric noise.
func (m *Geometric) Release(d *dataset.Dataset, g *rng.RNG) int64 {
	scale := float64(m.Sensitivity) / m.Epsilon
	return m.Query(d) + g.TwoSidedGeometric(scale)
}

// Guarantee returns (ε, 0).
func (m *Geometric) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// RandomizedResponse releases one bit per record: the true bit with
// probability e^ε/(1+e^ε) and its flip otherwise — the classical Warner
// design, which is ε-DP per record (local DP).
type RandomizedResponse struct {
	Epsilon float64
}

// NewRandomizedResponse validates ε.
func NewRandomizedResponse(epsilon float64) (*RandomizedResponse, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	return &RandomizedResponse{Epsilon: epsilon}, nil
}

// TruthProbability returns e^ε/(1+e^ε), the per-record truth-telling
// probability, computed as the numerically stable logistic sigmoid.
func (m *RandomizedResponse) TruthProbability() float64 {
	return mathx.Sigmoid(m.Epsilon)
}

// Release perturbs each bit independently.
func (m *RandomizedResponse) Release(bits []bool, g *rng.RNG) []bool {
	p := m.TruthProbability()
	out := make([]bool, len(bits))
	for i, b := range bits {
		if g.Bernoulli(p) {
			out[i] = b
		} else {
			out[i] = !b
		}
	}
	return out
}

// EstimateProportion debiases the released bits to estimate the true
// proportion of ones: p̂ = (f̂ + p − 1)/(2p − 1) where f̂ is the observed
// frequency and p the truth probability.
func (m *RandomizedResponse) EstimateProportion(released []bool) float64 {
	if len(released) == 0 {
		return math.NaN()
	}
	var ones float64
	for _, b := range released {
		if b {
			ones++
		}
	}
	f := ones / float64(len(released))
	p := m.TruthProbability()
	return (f + p - 1) / (2*p - 1)
}

// Guarantee returns (ε, 0) per record.
func (m *RandomizedResponse) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// EmpiricalL1Sensitivity estimates the L1 sensitivity of an arbitrary
// query by sampling trials random neighbor pairs: datasets drawn by gen
// with one record replaced by another generated record. It is a lower
// bound on the global sensitivity, useful for sanity-checking hand-derived
// constants in tests.
func EmpiricalL1Sensitivity(q func(*dataset.Dataset) []float64, gen func(*rng.RNG) *dataset.Dataset, trials int, g *rng.RNG) float64 {
	var maxDiff float64
	for t := 0; t < trials; t++ {
		d := gen(g)
		if d.Len() == 0 {
			continue
		}
		alt := gen(g)
		i := g.Intn(d.Len())
		nb := d.ReplaceOne(i, alt.Examples[g.Intn(alt.Len())])
		a, b := q(d), q(nb)
		var diff float64
		for k := range a {
			diff += math.Abs(a[k] - b[k])
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}
