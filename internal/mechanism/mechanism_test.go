package mechanism

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func binaryData(bits ...int) *dataset.Dataset {
	return dataset.BernoulliTable{P: 0.5}.FromBits(bits)
}

func TestGuaranteeString(t *testing.T) {
	if got := (Guarantee{Epsilon: 1}).String(); got != "1-DP" {
		t.Errorf("String = %q", got)
	}
	if got := (Guarantee{Epsilon: 0.5, Delta: 1e-6}).String(); got != "(0.5, 1e-06)-DP" {
		t.Errorf("String = %q", got)
	}
}

func TestCountQuery(t *testing.T) {
	d := binaryData(1, 0, 1, 1)
	q := CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
	if got := q.F(d); got[0] != 3 {
		t.Errorf("count = %v", got)
	}
	if q.L1Sensitivity != 1 {
		t.Error("count sensitivity must be 1")
	}
}

func TestCountQuerySensitivityEmpirical(t *testing.T) {
	g := rng.New(1)
	q := CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
	gen := func(h *rng.RNG) *dataset.Dataset {
		return dataset.BernoulliTable{P: 0.5}.Generate(20, h)
	}
	emp := EmpiricalL1Sensitivity(q.F, gen, 500, g)
	if emp > q.L1Sensitivity+1e-12 {
		t.Errorf("empirical sensitivity %v exceeds claimed %v", emp, q.L1Sensitivity)
	}
}

func TestBoundedMeanQuery(t *testing.T) {
	d := dataset.New([]dataset.Example{
		{X: []float64{0.2}}, {X: []float64{0.8}}, {X: []float64{5}}, // 5 clamps to 1
	})
	q := BoundedMeanQuery(0, 0, 1, 3)
	got := q.F(d)[0]
	if !mathx.AlmostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("bounded mean = %v", got)
	}
	if !mathx.AlmostEqual(q.L1Sensitivity, 1.0/3, 1e-12) {
		t.Errorf("sensitivity = %v", q.L1Sensitivity)
	}
}

func TestBoundedMeanSensitivityEmpirical(t *testing.T) {
	g := rng.New(2)
	n := 15
	q := BoundedMeanQuery(0, 0, 1, n)
	gen := func(h *rng.RNG) *dataset.Dataset {
		d := &dataset.Dataset{}
		for i := 0; i < n; i++ {
			d.Append(dataset.Example{X: []float64{h.Float64()}})
		}
		return d
	}
	emp := EmpiricalL1Sensitivity(q.F, gen, 1000, g)
	if emp > q.L1Sensitivity+1e-12 {
		t.Errorf("empirical sensitivity %v exceeds claimed %v", emp, q.L1Sensitivity)
	}
}

func TestHistogramQuerySensitivity(t *testing.T) {
	g := rng.New(3)
	q := HistogramQuery(0, 5, 0, 1)
	gen := func(h *rng.RNG) *dataset.Dataset {
		d := &dataset.Dataset{}
		for i := 0; i < 12; i++ {
			d.Append(dataset.Example{X: []float64{h.Float64()}})
		}
		return d
	}
	emp := EmpiricalL1Sensitivity(q.F, gen, 1000, g)
	if emp > q.L1Sensitivity+1e-12 {
		t.Errorf("empirical sensitivity %v exceeds claimed %v", emp, q.L1Sensitivity)
	}
	d := gen(g)
	counts := q.F(d)
	if mathx.SumSlice(counts) != 12 {
		t.Error("histogram total must equal n")
	}
}

func TestLaplaceValidation(t *testing.T) {
	q := CountQuery(func(dataset.Example) bool { return true })
	if _, err := NewLaplace(q, 0); err != ErrInvalidEpsilon {
		t.Error("epsilon validation")
	}
	bad := q
	bad.L1Sensitivity = 0
	if _, err := NewLaplace(bad, 1); err != ErrInvalidSensitivity {
		t.Error("sensitivity validation")
	}
}

func TestLaplaceScaleAndUnbiasedness(t *testing.T) {
	q := CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
	m, err := NewLaplace(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scale() != 2 {
		t.Errorf("Scale = %v, want Δ/ε = 2", m.Scale())
	}
	if m.Guarantee().Epsilon != 0.5 {
		t.Error("Guarantee")
	}
	d := binaryData(1, 1, 1, 0, 0)
	g := rng.New(5)
	var w mathx.Welford
	for i := 0; i < 100_000; i++ {
		w.Add(m.Release(d, g)[0])
	}
	if math.Abs(w.Mean()-3) > 0.05 {
		t.Errorf("noisy count mean = %v, want 3", w.Mean())
	}
	// Variance of Lap(b) is 2b² = 8.
	if math.Abs(w.Variance()-8)/8 > 0.05 {
		t.Errorf("noisy count variance = %v, want 8", w.Variance())
	}
}

func TestGaussianValidationAndMoments(t *testing.T) {
	q := CountQuery(func(dataset.Example) bool { return true })
	if _, err := NewGaussian(q, 2, 1e-5); err == nil {
		t.Error("ε > 1 must be rejected")
	}
	if _, err := NewGaussian(q, 0.5, 0); err == nil {
		t.Error("δ = 0 must be rejected")
	}
	m, err := NewGaussian(q, 0.5, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	wantSigma := math.Sqrt(2*math.Log(1.25e5)) / 0.5
	if !mathx.AlmostEqual(m.Sigma(), wantSigma, 1e-12) {
		t.Errorf("Sigma = %v, want %v", m.Sigma(), wantSigma)
	}
	d := binaryData(1, 1)
	g := rng.New(7)
	var w mathx.Welford
	for i := 0; i < 50_000; i++ {
		w.Add(m.Release(d, g)[0])
	}
	if math.Abs(w.Mean()-2) > 0.3 {
		t.Errorf("gaussian release mean = %v", w.Mean())
	}
}

func TestGeometricIntegerOutputs(t *testing.T) {
	q := func(d *dataset.Dataset) int64 { return int64(dataset.CountOnes(d)) }
	m, err := NewGeometric(q, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	d := binaryData(1, 0, 1)
	g := rng.New(9)
	var w mathx.Welford
	for i := 0; i < 100_000; i++ {
		w.Add(float64(m.Release(d, g)))
	}
	if math.Abs(w.Mean()-2) > 0.05 {
		t.Errorf("geometric release mean = %v, want 2", w.Mean())
	}
	if _, err := NewGeometric(q, 0, 1); err != ErrInvalidSensitivity {
		t.Error("sensitivity validation")
	}
	if _, err := NewGeometric(q, 1, -1); err != ErrInvalidEpsilon {
		t.Error("epsilon validation")
	}
}

func TestRandomizedResponse(t *testing.T) {
	m, err := NewRandomizedResponse(math.Log(3)) // p = 3/4
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(m.TruthProbability(), 0.75, 1e-12) {
		t.Errorf("TruthProbability = %v", m.TruthProbability())
	}
	g := rng.New(11)
	// 30% ones.
	bits := make([]bool, 50_000)
	for i := range bits {
		bits[i] = g.Bernoulli(0.3)
	}
	released := m.Release(bits, g)
	est := m.EstimateProportion(released)
	if math.Abs(est-0.3) > 0.02 {
		t.Errorf("debiased estimate = %v, want ≈ 0.3", est)
	}
	if !math.IsNaN(m.EstimateProportion(nil)) {
		t.Error("empty estimate should be NaN")
	}
	if _, err := NewRandomizedResponse(0); err != ErrInvalidEpsilon {
		t.Error("validation")
	}
}

func TestExponentialLogProbabilities(t *testing.T) {
	// Quality = count of ones minus candidate index (arbitrary but simple).
	quality := func(d *dataset.Dataset, u int) float64 {
		return float64(dataset.CountOnes(d) - u)
	}
	m, err := NewExponential(quality, 3, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	d := binaryData(1, 1, 0)
	logp := m.LogProbabilities(d)
	if !mathx.AlmostEqual(mathx.LogSumExp(logp), 0, 1e-12) {
		t.Error("log-probabilities must normalize")
	}
	// Exact ratios: p(u)/p(u+1) = exp(ε·1).
	if !mathx.AlmostEqual(logp[0]-logp[1], 0.8, 1e-12) {
		t.Errorf("log ratio = %v, want ε", logp[0]-logp[1])
	}
}

func TestExponentialExactPrivacy(t *testing.T) {
	// Theorem 2.2: for all neighbors and all outputs,
	// p_D(u) <= exp(2εΔq) p_D'(u). Verify exactly on the median quality.
	g := rng.New(13)
	grid := mathx.Linspace(0, 1, 21)
	m, _, err := PrivateMedian(0, grid, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	budget := m.Guarantee().Epsilon // 2εΔq = 1.4
	if !mathx.AlmostEqual(budget, 1.4, 1e-12) {
		t.Fatalf("guarantee = %v", budget)
	}
	for trial := 0; trial < 50; trial++ {
		d := &dataset.Dataset{}
		for i := 0; i < 11; i++ {
			d.Append(dataset.Example{X: []float64{g.Float64()}})
		}
		nb := d.ReplaceOne(g.Intn(11), dataset.Example{X: []float64{g.Float64()}})
		p1 := m.LogProbabilities(d)
		p2 := m.LogProbabilities(nb)
		for u := range p1 {
			if diff := math.Abs(p1[u] - p2[u]); diff > budget+1e-9 {
				t.Fatalf("privacy violated: |log ratio| = %v > %v", diff, budget)
			}
		}
	}
}

func TestExponentialUtility(t *testing.T) {
	// Private median of a sample concentrated at 0.5 should usually land
	// near 0.5 with a healthy ε.
	g := rng.New(17)
	grid := mathx.Linspace(0, 1, 41)
	m, vals, err := PrivateMedian(0, grid, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := &dataset.Dataset{}
	for i := 0; i < 101; i++ {
		d.Append(dataset.Example{X: []float64{g.Normal(0.5, 0.05)}})
	}
	hits := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		u := m.Release(d, g)
		if math.Abs(vals[u]-0.5) <= 0.1 {
			hits++
		}
	}
	if frac := float64(hits) / float64(trials); frac < 0.9 {
		t.Errorf("private median near truth only %v of the time", frac)
	}
	// Utility bound should be positive and finite.
	if b := m.UtilityBound(0.05); b <= 0 || math.IsInf(b, 0) {
		t.Errorf("UtilityBound = %v", b)
	}
}

func TestExponentialValidation(t *testing.T) {
	q := func(*dataset.Dataset, int) float64 { return 0 }
	if _, err := NewExponential(q, 0, 1, 1); err == nil {
		t.Error("zero candidates")
	}
	if _, err := NewExponential(q, 2, 0, 1); err != ErrInvalidSensitivity {
		t.Error("sensitivity")
	}
	if _, err := NewExponential(q, 2, 1, 0); err != ErrInvalidEpsilon {
		t.Error("epsilon")
	}
	m, _ := NewExponential(q, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("UtilityBound(beta>=1) should panic")
		}
	}()
	m.UtilityBound(1)
}

func TestPrivateMode(t *testing.T) {
	g := rng.New(19)
	m, vals, err := PrivateMode(0, []float64{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := &dataset.Dataset{}
	for i := 0; i < 60; i++ {
		d.Append(dataset.Example{X: []float64{1}}) // heavy mode at 1
	}
	for i := 0; i < 20; i++ {
		d.Append(dataset.Example{X: []float64{2}})
	}
	hits := 0
	for i := 0; i < 500; i++ {
		if vals[m.Release(d, g)] == 1 {
			hits++
		}
	}
	if hits < 480 {
		t.Errorf("mode recovered only %d/500", hits)
	}
}

func TestReportNoisyMax(t *testing.T) {
	g := rng.New(23)
	quality := func(d *dataset.Dataset, u int) float64 {
		if u == 2 {
			return 50 // clear winner
		}
		return 0
	}
	m, err := NewReportNoisyMax(quality, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := binaryData(1)
	hits := 0
	for i := 0; i < 1000; i++ {
		if m.Release(d, g) == 2 {
			hits++
		}
	}
	if hits < 990 {
		t.Errorf("noisy max picked the winner only %d/1000", hits)
	}
	if m.Guarantee().Epsilon != 1 {
		t.Error("guarantee")
	}
	if _, err := NewReportNoisyMax(quality, 0, 1, 1); err == nil {
		t.Error("zero candidates")
	}
}

func TestAccountantBasic(t *testing.T) {
	var a Accountant
	a.Spend(Guarantee{Epsilon: 0.5})
	a.Spend(Guarantee{Epsilon: 0.25, Delta: 1e-6})
	got := a.BasicComposition()
	if !mathx.AlmostEqual(got.Epsilon, 0.75, 1e-12) || !mathx.AlmostEqual(got.Delta, 1e-6, 1e-12) {
		t.Errorf("basic = %+v", got)
	}
	if a.Count() != 2 {
		t.Error("Count")
	}
	a.Reset()
	if a.Count() != 0 || a.BasicComposition().Epsilon != 0 {
		t.Error("Reset")
	}
}

func TestAccountantAdvanced(t *testing.T) {
	var a Accountant
	eps := 0.1
	k := 100
	for i := 0; i < k; i++ {
		a.Spend(Guarantee{Epsilon: eps})
	}
	adv, err := a.AdvancedComposition(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want := eps*math.Sqrt(2*float64(k)*math.Log(1e5)) + float64(k)*eps*(math.Exp(eps)-1)
	if !mathx.AlmostEqual(adv.Epsilon, want, 1e-12) {
		t.Errorf("advanced = %v, want %v", adv.Epsilon, want)
	}
	// For many small-ε mechanisms, advanced must beat basic.
	if adv.Epsilon >= a.BasicComposition().Epsilon {
		t.Error("advanced composition should be tighter here")
	}
	best := a.BestComposition(1e-5)
	if best.Epsilon != adv.Epsilon {
		t.Error("BestComposition should pick advanced")
	}
}

func TestAccountantAdvancedErrors(t *testing.T) {
	var a Accountant
	a.Spend(Guarantee{Epsilon: 0.1})
	a.Spend(Guarantee{Epsilon: 0.2})
	if _, err := a.AdvancedComposition(1e-5); err == nil {
		t.Error("heterogeneous ε must error")
	}
	var b Accountant
	b.Spend(Guarantee{Epsilon: 0.1, Delta: 1e-9})
	if _, err := b.AdvancedComposition(1e-5); err == nil {
		t.Error("impure guarantee must error")
	}
	var c Accountant
	c.Spend(Guarantee{Epsilon: 0.1})
	if _, err := c.AdvancedComposition(0); err == nil {
		t.Error("invalid slack must error")
	}
	// Empty accountant: ε = 0.
	var e Accountant
	g, err := e.AdvancedComposition(1e-5)
	if err != nil || g.Epsilon != 0 {
		t.Errorf("empty advanced = %+v, %v", g, err)
	}
	// BestComposition falls back to basic on error.
	if a.BestComposition(1e-5).Epsilon != a.BasicComposition().Epsilon {
		t.Error("fallback to basic")
	}
}

func TestParallelComposition(t *testing.T) {
	got := ParallelComposition([]Guarantee{
		{Epsilon: 0.5},
		{Epsilon: 1.5, Delta: 1e-7},
		{Epsilon: 1.0},
	})
	if got.Epsilon != 1.5 || got.Delta != 1e-7 {
		t.Errorf("parallel = %+v", got)
	}
}
