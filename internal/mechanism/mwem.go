package mechanism

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// MWEM implements the Multiplicative Weights Exponential Mechanism of
// Hardt, Ligett & McSherry (NIPS 2012): differentially-private synthetic
// data generation over a finite record domain. At each round it privately
// selects (via the exponential mechanism) the linear query on which the
// current synthetic distribution errs most, measures that query with
// Laplace noise, and applies a multiplicative-weights update. The full
// run is ε-DP by basic composition (ε/2T per selection guarantee, ε/2T
// per measurement, over T rounds).
//
// It is included as the flagship application of the exponential mechanism
// beyond learning — the same mechanism the paper identifies with the
// Gibbs estimator, used here to privately approximate an entire data
// distribution.
type MWEM struct {
	// DomainSize is the number of distinct record values.
	DomainSize int
	// Queries are linear counting queries: Queries[q][v] ∈ {0, 1} is
	// whether domain value v contributes to query q. Replace-one
	// sensitivity of each normalized query is 1/n.
	Queries [][]float64
	// Rounds is T.
	Rounds int
	// Epsilon is the total privacy budget.
	Epsilon float64
}

// NewMWEM validates the configuration.
func NewMWEM(domainSize int, queries [][]float64, rounds int, epsilon float64) (*MWEM, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if domainSize <= 0 {
		return nil, errors.New("mechanism: MWEM needs a positive domain size")
	}
	if rounds <= 0 {
		return nil, errors.New("mechanism: MWEM needs at least one round")
	}
	if len(queries) == 0 {
		return nil, errors.New("mechanism: MWEM needs queries")
	}
	for i, q := range queries {
		if len(q) != domainSize {
			return nil, fmt.Errorf("mechanism: MWEM query %d has %d entries for domain %d", i, len(q), domainSize)
		}
		for _, v := range q {
			//dplint:ignore floateq counting-query contract: indicator entries must be bitwise 0 or 1, anything else is rejected
			if v != 0 && v != 1 {
				return nil, fmt.Errorf("mechanism: MWEM query %d is not a 0/1 counting query", i)
			}
		}
	}
	return &MWEM{DomainSize: domainSize, Queries: queries, Rounds: rounds, Epsilon: epsilon}, nil
}

// evaluate returns the normalized value of query q on distribution p.
func evaluate(q, p []float64) float64 {
	var s float64
	for v, ind := range q {
		if ind == 1 { //dplint:ignore floateq entries are validated bitwise 0/1 indicators in NewMWEM

			s += p[v]
		}
	}
	return s
}

// Histogram converts a dataset whose records are integer domain values in
// X[0] into a normalized histogram over the domain. Out-of-range records
// are clamped.
func (m *MWEM) Histogram(d *dataset.Dataset) []float64 {
	h := make([]float64, m.DomainSize)
	for _, e := range d.Examples {
		v := int(e.X[0])
		if v < 0 {
			v = 0
		}
		if v >= m.DomainSize {
			v = m.DomainSize - 1
		}
		h[v]++
	}
	n := float64(d.Len())
	for v := range h {
		h[v] /= n
	}
	return h
}

// Run produces the synthetic distribution. The result is ε-DP with
// respect to the input dataset.
func (m *MWEM) Run(d *dataset.Dataset, g *rng.RNG) ([]float64, error) {
	return m.RunCtx(context.Background(), d, g)
}

// RunCtx is Run with cancellation: ctx is checked once per MWEM round,
// at the round boundary, so a canceled run stops before its next
// select/measure release rather than mid-update. Rounds already
// completed spent their per-round budget (the noisy measurements were
// released); a run that completes is bit-identical to Run.
func (m *MWEM) RunCtx(ctx context.Context, d *dataset.Dataset, g *rng.RNG) ([]float64, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("mechanism: MWEM needs a non-empty dataset")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := float64(d.Len())
	true_ := m.Histogram(d)
	// Synthetic distribution starts uniform.
	synth := make([]float64, m.DomainSize)
	for v := range synth {
		synth[v] = 1 / float64(m.DomainSize)
	}
	epsRound := m.Epsilon / float64(m.Rounds)
	// Selection quality: n·|error| has replace-one sensitivity 1.
	//dp:sensitivity Δq=1 (one swapped record moves each normalized count by 1/n, so n·|error| by at most 1)
	quality := func(_ *dataset.Dataset, qi int) float64 {
		return n * math.Abs(evaluate(m.Queries[qi], true_)-evaluate(m.Queries[qi], synth))
	}
	for t := 0; t < m.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mechanism: MWEM canceled before round %d/%d: %w", t, m.Rounds, err)
		}
		// Select the worst query with half the round budget. Guarantee of
		// the exponential mechanism is 2·mechEps·Δq, so mechEps = εr/4·Δq⁻¹.
		em, err := NewExponential(quality, len(m.Queries), 1, epsRound/4)
		if err != nil {
			return nil, err
		}
		qi := em.Release(d, g)
		// Measure it with the other half (Laplace on the count, sens 1).
		measured := n*evaluate(m.Queries[qi], true_) + g.Laplace(0, 2/epsRound)
		measured = mathx.Clamp(measured/n, 0, 1)
		// Multiplicative weights update toward the measurement.
		diff := measured - evaluate(m.Queries[qi], synth)
		for v := range synth {
			//dplint:ignore expdomain bounded argument: diff is in [-1,1] and query entries are 0/1, so |arg| <= 1/2
			factor := math.Exp(diff * m.Queries[qi][v] / 2)
			synth[v] *= factor
		}
		var z float64
		for _, p := range synth {
			z += p
		}
		for v := range synth {
			synth[v] /= z
		}
	}
	return synth, nil
}

// Guarantee returns the total (ε, 0) guarantee of a Run.
func (m *MWEM) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// MaxQueryError returns max_q |q(p) − q(truth)| over the query class,
// the utility metric of the MWEM paper.
func (m *MWEM) MaxQueryError(p, truth []float64) float64 {
	var worst float64
	for _, q := range m.Queries {
		if e := math.Abs(evaluate(q, p) - evaluate(q, truth)); e > worst {
			worst = e
		}
	}
	return worst
}

// RandomCountingQueries generates k random 0/1 counting queries over a
// domain of the given size (each value included with probability 1/2).
func RandomCountingQueries(domainSize, k int, g *rng.RNG) [][]float64 {
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, domainSize)
		for v := range out[i] {
			if g.Bernoulli(0.5) {
				out[i][v] = 1
			}
		}
	}
	return out
}

// IntervalQueries generates all interval (range) counting queries
// [a, b) over the domain — the classic range-query workload.
// There are domainSize·(domainSize+1)/2 of them; it panics when that
// exceeds 10⁵.
func IntervalQueries(domainSize int) [][]float64 {
	total := domainSize * (domainSize + 1) / 2
	if total > 100_000 {
		panic("mechanism: IntervalQueries workload too large")
	}
	out := make([][]float64, 0, total)
	for a := 0; a < domainSize; a++ {
		for b := a + 1; b <= domainSize; b++ {
			q := make([]float64, domainSize)
			for v := a; v < b; v++ {
				q[v] = 1
			}
			out = append(out, q)
		}
	}
	return out
}
