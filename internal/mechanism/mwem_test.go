package mechanism

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func intDataset(values []int) *dataset.Dataset {
	d := &dataset.Dataset{}
	for _, v := range values {
		d.Append(dataset.Example{X: []float64{float64(v)}})
	}
	return d
}

func TestMWEMValidation(t *testing.T) {
	q := [][]float64{{1, 0, 1}}
	if _, err := NewMWEM(3, q, 5, 0); err != ErrInvalidEpsilon {
		t.Error("epsilon")
	}
	if _, err := NewMWEM(0, q, 5, 1); err == nil {
		t.Error("domain")
	}
	if _, err := NewMWEM(3, q, 0, 1); err == nil {
		t.Error("rounds")
	}
	if _, err := NewMWEM(3, nil, 5, 1); err == nil {
		t.Error("no queries")
	}
	if _, err := NewMWEM(3, [][]float64{{1, 0}}, 5, 1); err == nil {
		t.Error("ragged query")
	}
	if _, err := NewMWEM(2, [][]float64{{0.5, 1}}, 5, 1); err == nil {
		t.Error("non-binary query")
	}
}

func TestMWEMHistogram(t *testing.T) {
	m, err := NewMWEM(4, [][]float64{{1, 1, 0, 0}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := intDataset([]int{0, 0, 1, 3, -5, 9})
	h := m.Histogram(d)
	want := []float64{3.0 / 6, 1.0 / 6, 0, 2.0 / 6} // clamping: -5→0, 9→3
	for v := range want {
		if !mathx.AlmostEqual(h[v], want[v], 1e-12) {
			t.Errorf("hist[%d] = %v, want %v", v, h[v], want[v])
		}
	}
}

func TestMWEMReducesQueryError(t *testing.T) {
	// A skewed distribution over a 16-value domain with interval queries:
	// after MWEM, the synthetic distribution must answer the workload
	// far better than the uniform start at a healthy ε.
	g := rng.New(1)
	domain := 16
	queries := IntervalQueries(domain)
	m, err := NewMWEM(domain, queries, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, 3000)
	for i := range values {
		// Concentrated on {2, 3, 4} with a tail.
		if g.Bernoulli(0.8) {
			values[i] = 2 + g.Intn(3)
		} else {
			values[i] = g.Intn(domain)
		}
	}
	d := intDataset(values)
	truth := m.Histogram(d)
	uniform := make([]float64, domain)
	for v := range uniform {
		uniform[v] = 1 / float64(domain)
	}
	synth, err := m.Run(d, g)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic is a distribution.
	if !mathx.AlmostEqual(mathx.SumSlice(synth), 1, 1e-9) {
		t.Fatalf("synthetic distribution sums to %v", mathx.SumSlice(synth))
	}
	errUniform := m.MaxQueryError(uniform, truth)
	errSynth := m.MaxQueryError(synth, truth)
	if errSynth >= errUniform/2 {
		t.Errorf("MWEM error %v not well below uniform %v", errSynth, errUniform)
	}
}

func TestMWEMErrorDecreasesWithEpsilon(t *testing.T) {
	g := rng.New(3)
	domain := 8
	queries := IntervalQueries(domain)
	values := make([]int, 2000)
	for i := range values {
		values[i] = g.Intn(3) // mass on {0,1,2}
	}
	d := intDataset(values)
	avgErr := func(eps float64) float64 {
		m, err := NewMWEM(domain, queries, 6, eps)
		if err != nil {
			t.Fatal(err)
		}
		truth := m.Histogram(d)
		var total float64
		const reps = 15
		for r := 0; r < reps; r++ {
			synth, err := m.Run(d, g)
			if err != nil {
				t.Fatal(err)
			}
			total += m.MaxQueryError(synth, truth)
		}
		return total / reps
	}
	low := avgErr(0.05)
	high := avgErr(10)
	if high >= low {
		t.Errorf("MWEM error at eps=10 (%v) not below eps=0.05 (%v)", high, low)
	}
}

func TestMWEMEmptyDataset(t *testing.T) {
	m, err := NewMWEM(4, [][]float64{{1, 0, 0, 1}}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(&dataset.Dataset{}, rng.New(1)); err == nil {
		t.Error("empty dataset must error")
	}
	if m.Guarantee().Epsilon != 1 {
		t.Error("guarantee")
	}
}

func TestRandomCountingQueries(t *testing.T) {
	g := rng.New(5)
	qs := RandomCountingQueries(10, 20, g)
	if len(qs) != 20 {
		t.Fatal("count")
	}
	for _, q := range qs {
		if len(q) != 10 {
			t.Fatal("width")
		}
		for _, v := range q {
			if v != 0 && v != 1 {
				t.Fatal("not binary")
			}
		}
	}
}

func TestIntervalQueries(t *testing.T) {
	qs := IntervalQueries(4)
	if len(qs) != 10 { // 4·5/2
		t.Fatalf("count = %d", len(qs))
	}
	// The full-domain interval is present.
	found := false
	for _, q := range qs {
		if mathx.SumSlice(q) == 4 {
			found = true
		}
	}
	if !found {
		t.Error("full interval missing")
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized workload should panic")
		}
	}()
	IntervalQueries(1000)
}

func TestMWEMPrivacySampled(t *testing.T) {
	// Coarse sampled audit: the distribution over released synthetic
	// histograms (projected to one query's answer, discretized) between
	// neighbors should respect the budget within MC noise. This is a
	// smoke-level check; the formal guarantee is by composition.
	g := rng.New(7)
	domain := 4
	queries := [][]float64{{1, 1, 0, 0}, {0, 1, 1, 0}, {0, 0, 1, 1}}
	eps := 2.0
	m, err := NewMWEM(domain, queries, 2, eps)
	if err != nil {
		t.Fatal(err)
	}
	base := intDataset([]int{0, 0, 1, 2, 3, 3, 1, 0, 2, 1})
	nb := base.ReplaceOne(0, dataset.Example{X: []float64{3}})
	trials := 30_000
	bins := 6
	countA := make([]int, bins)
	countB := make([]int, bins)
	binOf := func(x float64) int {
		idx := int(x * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		return idx
	}
	for i := 0; i < trials; i++ {
		sa, err := m.Run(base, g)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := m.Run(nb, g)
		if err != nil {
			t.Fatal(err)
		}
		countA[binOf(evaluate(queries[0], sa))]++
		countB[binOf(evaluate(queries[0], sb))]++
	}
	for b := 0; b < bins; b++ {
		if countA[b] < 300 || countB[b] < 300 {
			continue
		}
		ratio := math.Abs(math.Log(float64(countA[b]) / float64(countB[b])))
		if ratio > eps+0.3 {
			t.Errorf("bin %d: |log ratio| %v far exceeds eps %v", b, ratio, eps)
		}
	}
}

// TestMWEMRunCtxCancellation pins the round-boundary cancellation
// contract: a canceled context stops the run before its next
// select/measure release with a wrapped ctx error, and a completed
// RunCtx is bit-identical to Run.
func TestMWEMRunCtxCancellation(t *testing.T) {
	m, err := NewMWEM(8, IntervalQueries(8), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := intDataset([]int{0, 1, 2, 3, 4, 5, 6, 7, 2, 2})

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunCtx(canceled, d, rng.New(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	want, err := m.Run(d, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.RunCtx(context.Background(), d, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("value %d: RunCtx %v != Run %v", v, got[v], want[v])
		}
	}
}
