package mechanism

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// PermuteAndFlip is the permute-and-flip mechanism of McKenna & Sheldon
// (NeurIPS 2020): a drop-in replacement for the exponential mechanism for
// private selection that is ε-DP with utility never worse — and often a
// factor-of-two better — at equal ε. It visits the candidates in random
// order and accepts candidate u with probability
//
//	exp( ε · (q(D,u) − q*) / (2Δq) )
//
// where q* is the maximum quality; the first acceptance is released.
type PermuteAndFlip struct {
	// Quality scores candidate u on dataset d (higher is better).
	Quality func(d *dataset.Dataset, u int) float64
	// NumCandidates is the size of the output range.
	NumCandidates int
	// Sensitivity is Δq, the replace-one sensitivity of Quality.
	Sensitivity float64
	// Epsilon is the total privacy budget (the mechanism is ε-DP,
	// no factor of two on the guarantee side).
	Epsilon float64
}

// NewPermuteAndFlip validates and constructs the mechanism.
func NewPermuteAndFlip(quality func(*dataset.Dataset, int) float64, numCandidates int, sensitivity, epsilon float64) (*PermuteAndFlip, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if sensitivity <= 0 {
		return nil, ErrInvalidSensitivity
	}
	if numCandidates <= 0 {
		return nil, errors.New("mechanism: PermuteAndFlip needs at least one candidate")
	}
	return &PermuteAndFlip{Quality: quality, NumCandidates: numCandidates, Sensitivity: sensitivity, Epsilon: epsilon}, nil
}

// Release selects one candidate index.
func (m *PermuteAndFlip) Release(d *dataset.Dataset, g *rng.RNG) int {
	scores := make([]float64, m.NumCandidates)
	for u := range scores {
		scores[u] = m.Quality(d, u)
	}
	qStar := scores[mathx.ArgMax(scores)]
	for {
		perm := g.Perm(m.NumCandidates)
		for _, u := range perm {
			//dplint:ignore expdomain bounded argument: scores[u] <= qStar so the exponent is <= 0 and exp stays in (0,1]
			p := math.Exp(m.Epsilon * (scores[u] - qStar) / (2 * m.Sensitivity))
			if g.Bernoulli(p) {
				return u
			}
		}
		// All flips failed (possible only through floating-point rounding
		// since the argmax accepts with probability one); retry.
	}
}

// Guarantee returns (ε, 0).
func (m *PermuteAndFlip) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// LogProbabilities computes the exact output distribution of
// permute-and-flip on d by dynamic programming over subsets when
// NumCandidates <= 20 (it panics above that; the distribution requires
// summing over candidate orderings, which the DP reduces to 2^k states).
//
// For each candidate u with acceptance probability p_u, the release
// probability is Σ over orders of P(u first to accept). Group candidates
// by the DP over the subset S of candidates preceding u in the
// permutation: all must fail, each ordering equally likely.
func (m *PermuteAndFlip) LogProbabilities(d *dataset.Dataset) []float64 {
	k := m.NumCandidates
	if k > 20 {
		panic("mechanism: PermuteAndFlip.LogProbabilities limited to 20 candidates")
	}
	scores := make([]float64, k)
	for u := range scores {
		scores[u] = m.Quality(d, u)
	}
	qStar := scores[mathx.ArgMax(scores)]
	accept := make([]float64, k) // acceptance probabilities p_u
	fail := make([]float64, k)   // 1 − p_u
	for u := range accept {
		//dplint:ignore expdomain bounded argument: scores[u] <= qStar so the exponent is <= 0 and exp stays in (0,1]
		accept[u] = math.Exp(m.Epsilon * (scores[u] - qStar) / (2 * m.Sensitivity))
		fail[u] = 1 - accept[u]
	}
	// P(release = u) = Σ_{S ⊆ C\{u}} [ |S|!·(k−1−|S|)! / k! ] · Π_{v∈S} fail_v · accept_u
	//               = accept_u · Σ_s coeff(s) · e_s(fail over C\{u})
	// where e_s is the elementary symmetric polynomial of degree s.
	// Handle the all-fail restart by normalizing at the end (restart
	// renormalizes exactly, since each round is i.i.d.).
	probs := make([]float64, k)
	factorial := make([]float64, k+1)
	factorial[0] = 1
	for i := 1; i <= k; i++ {
		factorial[i] = factorial[i-1] * float64(i)
	}
	for u := 0; u < k; u++ {
		// Elementary symmetric polynomials of fail probabilities of the
		// other candidates.
		e := make([]float64, k) // e[s], s = 0..k-1
		e[0] = 1
		count := 0
		for v := 0; v < k; v++ {
			if v == u {
				continue
			}
			count++
			for s := count; s >= 1; s-- {
				e[s] += e[s-1] * fail[v]
			}
		}
		var total float64
		for s := 0; s <= k-1; s++ {
			coeff := factorial[s] * factorial[k-1-s] / factorial[k]
			total += coeff * e[s]
		}
		probs[u] = accept[u] * total
	}
	// Normalize (accounts for the restart-on-all-fail loop).
	z := mathx.SumSlice(probs)
	out := make([]float64, k)
	for u := range out {
		if probs[u] <= 0 {
			out[u] = math.Inf(-1)
		} else {
			out[u] = math.Log(probs[u] / z)
		}
	}
	return out
}

// ExpectedQualityGap returns E[q* − q(released)] computed from the exact
// output distribution — the utility metric used to compare selection
// mechanisms.
func ExpectedQualityGap(logProbs []float64, quality func(u int) float64) float64 {
	var best float64 = math.Inf(-1)
	for u := range logProbs {
		if q := quality(u); q > best {
			best = q
		}
	}
	var gap float64
	for u, lp := range logProbs {
		if math.IsInf(lp, -1) {
			continue
		}
		//dplint:ignore expdomain bounded argument: lp is a normalized log-probability, so lp <= 0 and exp stays in (0,1]
		gap += math.Exp(lp) * (best - quality(u))
	}
	return gap
}
