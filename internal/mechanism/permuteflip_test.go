package mechanism

import (
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func pfQuality(scores []float64) func(*dataset.Dataset, int) float64 {
	return func(_ *dataset.Dataset, u int) float64 { return scores[u] }
}

func TestPermuteAndFlipValidation(t *testing.T) {
	q := func(*dataset.Dataset, int) float64 { return 0 }
	if _, err := NewPermuteAndFlip(q, 0, 1, 1); err == nil {
		t.Error("zero candidates")
	}
	if _, err := NewPermuteAndFlip(q, 2, 0, 1); err != ErrInvalidSensitivity {
		t.Error("sensitivity")
	}
	if _, err := NewPermuteAndFlip(q, 2, 1, 0); err != ErrInvalidEpsilon {
		t.Error("epsilon")
	}
}

func TestPermuteAndFlipLogProbabilitiesMatchSampling(t *testing.T) {
	scores := []float64{3, 1, 0, 2.5}
	m, err := NewPermuteAndFlip(pfQuality(scores), len(scores), 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	d := &dataset.Dataset{Examples: []dataset.Example{{X: []float64{0}}}}
	logp := m.LogProbabilities(d)
	if !mathx.AlmostEqual(mathx.LogSumExp(logp), 0, 1e-10) {
		t.Fatalf("log-probabilities must normalize, got %v", mathx.LogSumExp(logp))
	}
	g := rng.New(1)
	nSamp := 300_000
	counts := make([]int, len(scores))
	for i := 0; i < nSamp; i++ {
		counts[m.Release(d, g)]++
	}
	for u := range scores {
		want := math.Exp(logp[u])
		got := float64(counts[u]) / float64(nSamp)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("candidate %d: sampled %v, exact %v", u, got, want)
		}
	}
}

func TestPermuteAndFlipArgmaxAlwaysAcceptable(t *testing.T) {
	// With one dominant candidate and tiny ε, PF still returns a valid
	// index and the argmax keeps the largest probability.
	scores := []float64{0, 10, 0}
	m, err := NewPermuteAndFlip(pfQuality(scores), 3, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d := &dataset.Dataset{Examples: []dataset.Example{{X: []float64{0}}}}
	logp := m.LogProbabilities(d)
	if mathx.ArgMax(logp) != 1 {
		t.Errorf("argmax candidate not most likely: %v", logp)
	}
}

func TestPermuteAndFlipPrivacyExact(t *testing.T) {
	// Exact audit of PF on median-style quality over neighbor pairs: the
	// realized loss must respect ε.
	g := rng.New(3)
	grid := mathx.Linspace(0, 1, 11)
	eps := 0.8
	quality := func(d *dataset.Dataset, u int) float64 {
		c := grid[u]
		var below float64
		for _, e := range d.Examples {
			if e.X[0] < c {
				below++
			}
		}
		return -math.Abs(below - float64(d.Len())/2)
	}
	m, err := NewPermuteAndFlip(quality, len(grid), 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(h *rng.RNG) *dataset.Dataset {
		d := &dataset.Dataset{}
		for i := 0; i < 15; i++ {
			d.Append(dataset.Example{X: []float64{h.Float64()}})
		}
		return d
	}
	pairs := audit.RandomNeighborPairs(gen, 100, g)
	got := audit.ExactAudit(m, pairs)
	if got > eps+1e-9 {
		t.Errorf("permute-and-flip exact audit %v exceeds eps %v", got, eps)
	}
	if got <= 0 {
		t.Error("audit should observe nonzero loss")
	}
}

func TestPermuteAndFlipBeatsExponentialUtility(t *testing.T) {
	// McKenna–Sheldon: PF's expected quality gap never exceeds EM's at
	// equal ε (for the same quality and sensitivity).
	g := rng.New(5)
	d := &dataset.Dataset{Examples: []dataset.Example{{X: []float64{0}}}}
	for trial := 0; trial < 30; trial++ {
		k := 2 + g.Intn(10)
		scores := make([]float64, k)
		for i := range scores {
			scores[i] = g.Uniform(-3, 3)
		}
		eps := g.Uniform(0.2, 4)
		pf, err := NewPermuteAndFlip(pfQuality(scores), k, 1, eps)
		if err != nil {
			t.Fatal(err)
		}
		// EM with guarantee 2·mechEps·Δq = eps → mechEps = eps/2.
		em, err := NewExponential(pfQuality(scores), k, 1, eps/2)
		if err != nil {
			t.Fatal(err)
		}
		q := func(u int) float64 { return scores[u] }
		gapPF := ExpectedQualityGap(pf.LogProbabilities(d), q)
		gapEM := ExpectedQualityGap(em.LogProbabilities(d), q)
		if gapPF > gapEM+1e-9 {
			t.Fatalf("PF gap %v exceeds EM gap %v (k=%d, eps=%v, scores=%v)", gapPF, gapEM, k, eps, scores)
		}
	}
}

func TestPermuteAndFlipLogProbsPanicAbove20(t *testing.T) {
	m, err := NewPermuteAndFlip(func(*dataset.Dataset, int) float64 { return 0 }, 21, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("should panic above 20 candidates")
		}
	}()
	m.LogProbabilities(&dataset.Dataset{})
}

func TestExpectedQualityGap(t *testing.T) {
	// Point mass on the argmax: zero gap.
	logp := []float64{0, math.Inf(-1)}
	q := func(u int) float64 { return []float64{5, 1}[u] }
	if gap := ExpectedQualityGap(logp, q); gap != 0 {
		t.Errorf("gap = %v", gap)
	}
	// Uniform over {5, 1}: gap = 2.
	u := []float64{math.Log(0.5), math.Log(0.5)}
	if gap := ExpectedQualityGap(u, q); !mathx.AlmostEqual(gap, 2, 1e-12) {
		t.Errorf("gap = %v", gap)
	}
}
