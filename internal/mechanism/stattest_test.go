package mechanism

// Statistical differential-privacy battery: for each mechanism and each
// ε, draw a large sample of outputs on a worst-case adjacent dataset
// pair, histogram the outcomes, and check that the empirical
// log-likelihood ratio of every well-populated outcome bin stays within
// the advertised ε plus a Chernoff-style sampling slack. This is the
// sampled-path complement of the exact distribution audits in
// internal/audit: it exercises Release (the code users actually call),
// not LogProbabilities.
//
// The slack per bin is 3·sqrt(1/c1 + 1/c2) — three standard deviations
// of the empirical log-ratio of two independent binomial proportions
// (delta method) — so with the fixed seeds below the battery is
// deterministic, and even under reseeding a false alarm per bin is a
// ≈0.3% event.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

const (
	statSamples  = 200_000
	statMinCount = 100
)

// statEpsilons is the ε grid every mechanism in the battery runs at.
var statEpsilons = []float64{0.1, 1, 4}

// adjacentCountingPair returns a worst-case replace-one neighbor pair
// for the counting query "X[0] > 0": d2 flips one positive example to
// negative, so the true counts differ by exactly the sensitivity (1).
func adjacentCountingPair() (d1, d2 *dataset.Dataset) {
	n := 40
	examples := make([]dataset.Example, n)
	for i := range examples {
		x := 0.0
		if i%2 == 0 {
			x = 1.0
		}
		examples[i] = dataset.Example{X: []float64{x}, Y: 0}
	}
	d1 = dataset.New(examples)
	d2 = d1.ReplaceOne(0, dataset.Example{X: []float64{0}, Y: 0})
	return d1, d2
}

// checkEmpiricalDP asserts that for every outcome bin populated with at
// least statMinCount samples on BOTH sides, the empirical
// log-likelihood ratio is at most eps plus the per-bin sampling slack.
// It fails the test if no bin is populated enough to check anything.
func checkEmpiricalDP(t *testing.T, eps float64, c1, c2 map[int]int, n1, n2 int) {
	t.Helper()
	checked := 0
	for bin, a := range c1 {
		b, ok := c2[bin]
		if !ok || a < statMinCount || b < statMinCount {
			continue
		}
		checked++
		llr := math.Log(float64(a)/float64(n1)) - math.Log(float64(b)/float64(n2))
		slack := 3 * math.Sqrt(1/float64(a)+1/float64(b))
		if math.Abs(llr) > eps+slack {
			t.Errorf("bin %d: |empirical log-ratio| = %.4f exceeds eps + slack = %.4f + %.4f (counts %d vs %d)",
				bin, math.Abs(llr), eps, slack, a, b)
		}
	}
	if checked == 0 {
		t.Fatalf("no outcome bin reached %d samples on both sides; battery checked nothing", statMinCount)
	}
}

// sampleHist draws statSamples outcomes from draw and histograms them.
func sampleHist(draw func(g *rng.RNG) int, g *rng.RNG) map[int]int {
	h := make(map[int]int)
	for i := 0; i < statSamples; i++ {
		h[draw(g)]++
	}
	return h
}

// TestLaplaceEmpiricalDP samples the Laplace mechanism on a counting
// query (sensitivity 1) over adjacent datasets and checks the per-bin
// empirical privacy loss. Outcomes are binned to the nearest integer;
// the pointwise density ratio bound e^ε survives integration over any
// bin, so the per-bin guarantee is still ε.
func TestLaplaceEmpiricalDP(t *testing.T) {
	d1, d2 := adjacentCountingPair()
	q := CountQuery(func(e dataset.Example) bool { return e.X[0] > 0 })
	for _, eps := range statEpsilons {
		t.Run(fmt.Sprintf("eps=%g", eps), func(t *testing.T) {
			m, err := NewLaplace(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			draw := func(d *dataset.Dataset) func(g *rng.RNG) int {
				return func(g *rng.RNG) int {
					return int(math.Round(m.Release(d, g)[0]))
				}
			}
			c1 := sampleHist(draw(d1), rng.New(101))
			c2 := sampleHist(draw(d2), rng.New(202))
			checkEmpiricalDP(t, eps, c1, c2, statSamples, statSamples)
		})
	}
}

// statQuality is a selection quality with replace-one sensitivity 1:
// the negated distance between the dataset's positive count and the
// candidate index.
func statQuality(d *dataset.Dataset, u int) float64 {
	var count float64
	for _, e := range d.Examples {
		if e.X[0] > 0 {
			count++
		}
	}
	return -math.Abs(count - float64(u))
}

// TestExponentialEmpiricalDP samples the exponential mechanism's
// Release over adjacent datasets. The Theorem 2.2 guarantee is 2·ε·Δq,
// so the mechanism is built with parameter ε/2 to target a total budget
// of ε.
func TestExponentialEmpiricalDP(t *testing.T) {
	d1, d2 := adjacentCountingPair()
	for _, eps := range statEpsilons {
		t.Run(fmt.Sprintf("eps=%g", eps), func(t *testing.T) {
			m, err := NewExponential(statQuality, 25, 1, eps/2)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Guarantee().Epsilon; math.Abs(got-eps) > 1e-12 {
				t.Fatalf("guarantee %.6f, want %.6f", got, eps)
			}
			draw := func(d *dataset.Dataset) func(g *rng.RNG) int {
				return func(g *rng.RNG) int { return m.Release(d, g) }
			}
			c1 := sampleHist(draw(d1), rng.New(303))
			c2 := sampleHist(draw(d2), rng.New(404))
			checkEmpiricalDP(t, eps, c1, c2, statSamples, statSamples)
		})
	}
}

// TestPermuteAndFlipEmpiricalDP samples permute-and-flip's Release over
// adjacent datasets; the mechanism is ε-DP at its parameter directly
// (no factor of two).
func TestPermuteAndFlipEmpiricalDP(t *testing.T) {
	d1, d2 := adjacentCountingPair()
	for _, eps := range statEpsilons {
		t.Run(fmt.Sprintf("eps=%g", eps), func(t *testing.T) {
			m, err := NewPermuteAndFlip(statQuality, 25, 1, eps)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Guarantee().Epsilon; math.Abs(got-eps) > 1e-12 {
				t.Fatalf("guarantee %.6f, want %.6f", got, eps)
			}
			draw := func(d *dataset.Dataset) func(g *rng.RNG) int {
				return func(g *rng.RNG) int { return m.Release(d, g) }
			}
			c1 := sampleHist(draw(d1), rng.New(505))
			c2 := sampleHist(draw(d2), rng.New(606))
			checkEmpiricalDP(t, eps, c1, c2, statSamples, statSamples)
		})
	}
}
