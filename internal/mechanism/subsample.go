package mechanism

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// SubsampleAndAggregate implements the Nissim–Raskhodnikova–Smith
// framework: partition the dataset into Blocks disjoint blocks, evaluate
// an ARBITRARY estimator on each block, and aggregate the per-block
// results with a differentially-private aggregator. Because each record
// affects exactly one block, the vector of block estimates has
// replace-one sensitivity confined to a single coordinate, so a private
// median over a bounded output range releases the aggregate at ε-DP —
// with no smoothness or sensitivity assumption on the estimator itself.
type SubsampleAndAggregate struct {
	// Estimator maps a data block to a real estimate.
	Estimator func(*dataset.Dataset) float64
	// Blocks is the number of disjoint blocks.
	Blocks int
	// Lo, Hi bound the estimator's output range (estimates are clamped);
	// the candidate grid for the private median spans this range.
	Lo, Hi float64
	// GridPoints is the private-median candidate count (default 33).
	GridPoints int
	// Epsilon is the privacy budget of one Release.
	Epsilon float64
}

// NewSubsampleAndAggregate validates the configuration.
func NewSubsampleAndAggregate(estimator func(*dataset.Dataset) float64, blocks int, lo, hi, epsilon float64) (*SubsampleAndAggregate, error) {
	if estimator == nil {
		return nil, errors.New("mechanism: SubsampleAndAggregate needs an estimator")
	}
	if blocks < 2 {
		return nil, errors.New("mechanism: SubsampleAndAggregate needs at least two blocks")
	}
	if hi <= lo {
		return nil, errors.New("mechanism: SubsampleAndAggregate needs hi > lo")
	}
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	return &SubsampleAndAggregate{
		Estimator:  estimator,
		Blocks:     blocks,
		Lo:         lo,
		Hi:         hi,
		GridPoints: 33,
		Epsilon:    epsilon,
	}, nil
}

// Release partitions d (after a seeded shuffle), runs the estimator per
// block, and returns the ε-DP private median of the clamped block
// estimates.
func (m *SubsampleAndAggregate) Release(d *dataset.Dataset, g *rng.RNG) (float64, error) {
	if d == nil || d.Len() < m.Blocks {
		return 0, errors.New("mechanism: dataset smaller than the block count")
	}
	perm := g.Perm(d.Len())
	estimates := make([]float64, m.Blocks)
	for b := 0; b < m.Blocks; b++ {
		block := &dataset.Dataset{}
		lo := b * d.Len() / m.Blocks
		hi := (b + 1) * d.Len() / m.Blocks
		for _, idx := range perm[lo:hi] {
			block.Append(d.Examples[idx].Clone())
		}
		v := m.Estimator(block)
		if v < m.Lo {
			v = m.Lo
		}
		if v > m.Hi {
			v = m.Hi
		}
		estimates[b] = v
	}
	// Private median over the block estimates. One record changes one
	// block, hence one estimate, hence the median quality by at most 1 —
	// the same sensitivity-1 argument as PrivateMedian on raw data.
	est := &dataset.Dataset{}
	for _, v := range estimates {
		est.Append(dataset.Example{X: []float64{v}})
	}
	step := (m.Hi - m.Lo) / float64(m.GridPoints-1)
	grid := make([]float64, m.GridPoints)
	for i := range grid {
		grid[i] = m.Lo + float64(i)*step
	}
	// Calibrate so the exponential mechanism's 2εΔq guarantee equals the
	// budget.
	med, vals, err := PrivateMedian(0, grid, m.Epsilon/2)
	if err != nil {
		return 0, err
	}
	return vals[med.Release(est, g)], nil
}

// Guarantee returns (ε, 0).
func (m *SubsampleAndAggregate) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }
