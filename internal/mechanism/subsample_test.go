package mechanism

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestSubsampleAndAggregateValidation(t *testing.T) {
	est := func(d *dataset.Dataset) float64 { return 0 }
	if _, err := NewSubsampleAndAggregate(nil, 5, 0, 1, 1); err == nil {
		t.Error("nil estimator")
	}
	if _, err := NewSubsampleAndAggregate(est, 1, 0, 1, 1); err == nil {
		t.Error("blocks < 2")
	}
	if _, err := NewSubsampleAndAggregate(est, 5, 1, 0, 1); err == nil {
		t.Error("hi <= lo")
	}
	if _, err := NewSubsampleAndAggregate(est, 5, 0, 1, 0); err != ErrInvalidEpsilon {
		t.Error("epsilon")
	}
}

func TestSubsampleAndAggregateMeanEstimation(t *testing.T) {
	// Estimator: block mean. The aggregate should land near the
	// population mean at generous ε.
	g := rng.New(1)
	d := &dataset.Dataset{}
	for i := 0; i < 2000; i++ {
		d.Append(dataset.Example{X: []float64{g.Normal(0.6, 0.1)}})
	}
	est := func(block *dataset.Dataset) float64 {
		return stats.Mean(block.Feature(0))
	}
	m, err := NewSubsampleAndAggregate(est, 20, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Guarantee().Epsilon != 8 {
		t.Error("guarantee")
	}
	var acc float64
	const reps = 50
	for r := 0; r < reps; r++ {
		v, err := m.Release(d, g)
		if err != nil {
			t.Fatal(err)
		}
		acc += v
	}
	if got := acc / reps; math.Abs(got-0.6) > 0.05 {
		t.Errorf("aggregated mean = %v, want ≈ 0.6", got)
	}
}

func TestSubsampleAndAggregateArbitraryEstimator(t *testing.T) {
	// The framework requires NO sensitivity analysis of the estimator —
	// use a pathological, discontinuous one and check the release stays
	// in range and runs.
	g := rng.New(3)
	d := dataset.BernoulliTable{P: 0.5}.Generate(500, g)
	weird := func(block *dataset.Dataset) float64 {
		if dataset.CountOnes(block)%2 == 0 {
			return 1e9 // wildly out of range: must be clamped
		}
		return -1e9
	}
	m, err := NewSubsampleAndAggregate(weird, 10, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Release(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Errorf("release %v escaped [Lo, Hi]", v)
	}
}

func TestSubsampleAndAggregateTooSmall(t *testing.T) {
	g := rng.New(5)
	d := dataset.BernoulliTable{P: 0.5}.Generate(3, g)
	m, err := NewSubsampleAndAggregate(func(*dataset.Dataset) float64 { return 0 }, 5, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Release(d, g); err == nil {
		t.Error("dataset smaller than blocks must error")
	}
}

func TestSubsampleAndAggregatePrivacySampled(t *testing.T) {
	// Sampled audit over neighbors: the released median's distribution
	// must respect ε. The block partition is randomized per release, so
	// we audit the full randomized pipeline.
	g := rng.New(7)
	eps := 1.0
	est := func(block *dataset.Dataset) float64 {
		return stats.Mean(block.Feature(0))
	}
	m, err := NewSubsampleAndAggregate(est, 8, 0, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	base := dataset.BernoulliTable{P: 0.5}.Generate(64, g)
	nb := base.ReplaceOne(0, dataset.Example{X: []float64{1 - base.Examples[0].X[0]}})
	trials := 40_000
	counts := func(d *dataset.Dataset) map[float64]int {
		out := map[float64]int{}
		for i := 0; i < trials; i++ {
			v, err := m.Release(d, g)
			if err != nil {
				t.Fatal(err)
			}
			out[v]++
		}
		return out
	}
	ca := counts(base)
	cb := counts(nb)
	for v, na := range ca {
		nbCount := cb[v]
		if na < 400 || nbCount < 400 {
			continue
		}
		ratio := math.Abs(math.Log(float64(na) / float64(nbCount)))
		if ratio > eps+0.15 {
			t.Errorf("output %v: |log ratio| %v exceeds eps %v", v, ratio, eps)
		}
	}
}
