package mechanism

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// SparseVector implements the AboveThreshold / Sparse Vector Technique
// (Dwork–Naor–Reingold–Rothblum–Vadhan): given an adaptive stream of
// sensitivity-1 queries and a threshold, it reports which queries exceed
// the (noised) threshold, halting after MaxPositives positive answers.
// The entire interaction is ε-DP regardless of the number of negative
// answers — the canonical example of privacy budget scaling with the
// number of *findings* rather than the number of *questions*.
//
// Budget split: ε/2 on the threshold noise, ε/2 shared across the (up to
// c = MaxPositives) positive answers, the standard calibration.
type SparseVector struct {
	// Threshold is the comparison level T.
	Threshold float64
	// Epsilon is the total privacy budget for the whole interaction.
	Epsilon float64
	// MaxPositives is c, the number of above-threshold reports after
	// which the mechanism halts.
	MaxPositives int

	noisedThreshold float64
	positivesLeft   int
	started         bool
	g               *rng.RNG
	data            *dataset.Dataset
}

// ErrSVTExhausted is returned by Query after the mechanism has reported
// MaxPositives positives.
var ErrSVTExhausted = errors.New("mechanism: sparse vector budget exhausted")

// NewSparseVector validates and prepares an AboveThreshold run over the
// given dataset.
func NewSparseVector(d *dataset.Dataset, threshold, epsilon float64, maxPositives int, g *rng.RNG) (*SparseVector, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, ErrInvalidEpsilon
	}
	if maxPositives <= 0 {
		return nil, errors.New("mechanism: SparseVector needs maxPositives >= 1")
	}
	if d == nil || d.Len() == 0 {
		return nil, errors.New("mechanism: SparseVector needs a non-empty dataset")
	}
	return &SparseVector{
		Threshold:     threshold,
		Epsilon:       epsilon,
		MaxPositives:  maxPositives,
		positivesLeft: maxPositives,
		g:             g,
		data:          d,
	}, nil
}

// Query answers one sensitivity-1 query: true if the noised query value
// exceeds the noised threshold. Queries may be chosen adaptively based on
// previous answers. After MaxPositives true answers it returns
// ErrSVTExhausted.
func (s *SparseVector) Query(q func(*dataset.Dataset) float64) (bool, error) {
	if s.positivesLeft <= 0 {
		return false, ErrSVTExhausted
	}
	if !s.started {
		s.noisedThreshold = s.Threshold + s.g.Laplace(0, 2/s.Epsilon)
		s.started = true
	}
	c := float64(s.MaxPositives)
	v := q(s.data) + s.g.Laplace(0, 4*c/s.Epsilon)
	if v >= s.noisedThreshold {
		s.positivesLeft--
		return true, nil
	}
	return false, nil
}

// PositivesRemaining reports how many above-threshold answers are left.
func (s *SparseVector) PositivesRemaining() int { return s.positivesLeft }

// Guarantee returns the total (ε, 0) guarantee of the interaction.
func (s *SparseVector) Guarantee() Guarantee { return Guarantee{Epsilon: s.Epsilon} }

// PrivateQuantile returns an exponential mechanism selecting the
// p-quantile (0 < p < 1) of feature j from the candidate grid: the
// quality of candidate c is −|#{x < c} − p·n|, which has replace-one
// sensitivity 1. PrivateMedian is the p = 1/2 case.
func PrivateQuantile(j int, p float64, candidates []float64, epsilon float64) (*Exponential, []float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, nil, errors.New("mechanism: PrivateQuantile needs p in (0,1)")
	}
	if len(candidates) == 0 {
		return nil, nil, errors.New("mechanism: PrivateQuantile needs candidates")
	}
	grid := append([]float64(nil), candidates...)
	//dp:sensitivity Δq=1 (replace-one moves the below-count by at most 1; |·| is 1-Lipschitz)
	quality := func(d *dataset.Dataset, u int) float64 {
		c := grid[u]
		var below float64
		for _, e := range d.Examples {
			if e.X[j] < c {
				below++
			}
		}
		return -math.Abs(below - p*float64(d.Len()))
	}
	m, err := NewExponential(quality, len(grid), 1, epsilon)
	if err != nil {
		return nil, nil, err
	}
	return m, grid, nil
}

// PrivateRange privately estimates an interval [lo, hi] containing the
// central `coverage` mass of feature j (e.g. coverage = 0.9 gives the
// 5th and 95th percentiles), by two PrivateQuantile selections, each with
// half the budget. Each selection receives a mechanism ε of epsilon/4, so
// its exponential-mechanism guarantee (2·ε·Δq with Δq = 1) quotes
// epsilon/2 and the release is ε-DP in total by basic composition; both
// halves are registered with acct (nil to skip accounting).
func PrivateRange(d *dataset.Dataset, j int, coverage float64, candidates []float64, epsilon float64, acct *Accountant, g *rng.RNG) (lo, hi float64, err error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return 0, 0, ErrInvalidEpsilon
	}
	if coverage <= 0 || coverage >= 1 {
		return 0, 0, errors.New("mechanism: PrivateRange needs coverage in (0,1)")
	}
	tail := (1 - coverage) / 2
	mLo, grid, err := PrivateQuantile(j, tail, candidates, epsilon/4)
	if err != nil {
		return 0, 0, err
	}
	mHi, _, err := PrivateQuantile(j, 1-tail, candidates, epsilon/4)
	if err != nil {
		return 0, 0, err
	}
	lo = grid[mLo.Release(d, g)]
	acct.SpendDetail(mLo.Guarantee(), SpendMeta{
		Mechanism:   "expmech",
		Sensitivity: mLo.Sensitivity,
		Outcomes:    len(grid),
	})
	hi = grid[mHi.Release(d, g)]
	acct.SpendDetail(mHi.Guarantee(), SpendMeta{
		Mechanism:   "expmech",
		Sensitivity: mHi.Sensitivity,
		Outcomes:    len(grid),
	})
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi, nil
}
