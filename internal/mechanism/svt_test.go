package mechanism

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestSparseVectorBasics(t *testing.T) {
	g := rng.New(1)
	d := dataset.BernoulliTable{P: 0.5}.Generate(1000, g)
	ones := float64(dataset.CountOnes(d))

	sv, err := NewSparseVector(d, 500, 8, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Guarantee().Epsilon != 8 {
		t.Error("guarantee")
	}
	// A query far above threshold must answer true; far below, false
	// (with ε=8 the noise scale is ~1, negligible against gaps of 400+).
	hi := func(dd *dataset.Dataset) float64 { return ones + 1000 }
	lo := func(dd *dataset.Dataset) float64 { return -1000 }
	got, err := sv.Query(lo)
	if err != nil || got {
		t.Errorf("far-below query answered %v, %v", got, err)
	}
	got, err = sv.Query(hi)
	if err != nil || !got {
		t.Errorf("far-above query answered %v, %v", got, err)
	}
	if sv.PositivesRemaining() != 1 {
		t.Errorf("positives remaining = %d", sv.PositivesRemaining())
	}
	// Second positive consumes the run.
	if _, err := sv.Query(hi); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Query(hi); !errors.Is(err, ErrSVTExhausted) {
		t.Errorf("expected ErrSVTExhausted, got %v", err)
	}
}

func TestSparseVectorManyNegativesFree(t *testing.T) {
	// Negative answers do not consume the positive budget.
	g := rng.New(3)
	d := dataset.BernoulliTable{P: 0.5}.Generate(100, g)
	sv, err := NewSparseVector(d, 1e9, 1, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		got, err := sv.Query(func(dd *dataset.Dataset) float64 { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatal("query below a huge threshold answered true")
		}
	}
	if sv.PositivesRemaining() != 1 {
		t.Error("negatives must not consume budget")
	}
}

func TestSparseVectorValidation(t *testing.T) {
	g := rng.New(5)
	d := dataset.BernoulliTable{P: 0.5}.Generate(10, g)
	if _, err := NewSparseVector(d, 0, 0, 1, g); err != ErrInvalidEpsilon {
		t.Error("epsilon")
	}
	if _, err := NewSparseVector(d, 0, 1, 0, g); err == nil {
		t.Error("maxPositives")
	}
	if _, err := NewSparseVector(&dataset.Dataset{}, 0, 1, 1, g); err == nil {
		t.Error("empty dataset")
	}
}

func TestSparseVectorPrivacySampled(t *testing.T) {
	// Empirically audit one full SVT interaction (fixed query sequence)
	// between neighbors: the distribution over answer patterns must obey
	// the claimed ε. We use a single query whose value straddles the
	// threshold on the two datasets.
	eps := 1.0
	trials := 200_000
	g := rng.New(7)
	pattern := func(d *dataset.Dataset) int {
		sv, err := NewSparseVector(d, 10, eps, 1, g)
		if err != nil {
			t.Fatal(err)
		}
		count := func(dd *dataset.Dataset) float64 { return float64(dataset.CountOnes(dd)) }
		got, err := sv.Query(count)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			return 1
		}
		return 0
	}
	// Neighbors with counts 10 and 11 around threshold 10.
	bitsA := make([]int, 20)
	for i := 0; i < 10; i++ {
		bitsA[i] = 1
	}
	bitsB := append([]int(nil), bitsA...)
	bitsB[10] = 1
	dA := dataset.BernoulliTable{}.FromBits(bitsA)
	dB := dataset.BernoulliTable{}.FromBits(bitsB)
	countsA := [2]int{}
	countsB := [2]int{}
	for i := 0; i < trials; i++ {
		countsA[pattern(dA)]++
		countsB[pattern(dB)]++
	}
	for v := 0; v < 2; v++ {
		pa := float64(countsA[v]) / float64(trials)
		pb := float64(countsB[v]) / float64(trials)
		ratio := math.Abs(math.Log(pa / pb))
		if ratio > eps+0.1 { // MC tolerance
			t.Errorf("answer %d: |log ratio| = %v exceeds eps %v", v, ratio, eps)
		}
	}
}

func TestPrivateQuantile(t *testing.T) {
	g := rng.New(9)
	d := &dataset.Dataset{}
	for i := 0; i < 201; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	grid := mathx.Linspace(0, 1, 41)
	m, vals, err := PrivateQuantile(0, 0.9, grid, 5)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 500; i++ {
		if v := vals[m.Release(d, g)]; math.Abs(v-0.9) <= 0.1 {
			hits++
		}
	}
	if hits < 400 {
		t.Errorf("0.9-quantile near truth only %d/500", hits)
	}
	if _, _, err := PrivateQuantile(0, 0, grid, 1); err == nil {
		t.Error("p=0 must error")
	}
	if _, _, err := PrivateQuantile(0, 0.5, nil, 1); err == nil {
		t.Error("no candidates must error")
	}
}

func TestPrivateQuantileMatchesMedianAtHalf(t *testing.T) {
	grid := mathx.Linspace(0, 1, 21)
	mq, _, err := PrivateQuantile(0, 0.5, grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm, _, err := PrivateMedian(0, grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(11)
	d := &dataset.Dataset{}
	for i := 0; i < 51; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	pq := mq.LogProbabilities(d)
	pm := mm.LogProbabilities(d)
	for i := range pq {
		if !mathx.AlmostEqual(pq[i], pm[i], 1e-9) {
			t.Fatalf("quantile(0.5) != median at %d: %v vs %v", i, pq[i], pm[i])
		}
	}
}

func TestPrivateRange(t *testing.T) {
	g := rng.New(13)
	d := &dataset.Dataset{}
	for i := 0; i < 500; i++ {
		d.Append(dataset.Example{X: []float64{mathx.Clamp(g.Normal(0.5, 0.1), 0, 1)}})
	}
	grid := mathx.Linspace(0, 1, 51)
	acct := &Accountant{}
	lo, hi, err := PrivateRange(d, 0, 0.9, grid, 10, acct, g)
	if err != nil {
		t.Fatal(err)
	}
	if acct.Count() != 2 {
		t.Errorf("PrivateRange must account both quantile releases, got %d spends", acct.Count())
	}
	if lo >= hi {
		t.Fatalf("range [%v, %v] degenerate", lo, hi)
	}
	// The central 90% of N(0.5, 0.1) is about [0.34, 0.66].
	if lo < 0.2 || lo > 0.45 || hi < 0.55 || hi > 0.8 {
		t.Errorf("range [%v, %v] far from [0.34, 0.66]", lo, hi)
	}
	if _, _, err := PrivateRange(d, 0, 1.5, grid, 1, nil, g); err == nil {
		t.Error("coverage out of range must error")
	}
}
