package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// AccessRecord is one line of the serve layer's access log: the
// per-request face of the privacy ledger. Where a LedgerRecord accounts
// for one mechanism release, an AccessRecord accounts for one HTTP
// request — which tenant asked, what it cost (quoted vs. actually
// committed ε), how the admission decision went, and how long the
// request ran — all keyed by the same trace id that the request's spans
// and ledger lines carry, so the three artifacts join offline.
type AccessRecord struct {
	// Trace is the request's 32-hex-digit W3C trace id ("" when the
	// client sent no traceparent header).
	Trace string `json:"trace,omitempty"`
	// Tenant is the tenant id the request named ("" when unresolved).
	Tenant string `json:"tenant,omitempty"`
	// Endpoint is the logical endpoint ("fit", "density", ...).
	Endpoint string `json:"endpoint"`
	// Status is the HTTP status code written.
	Status int `json:"status"`
	// QuotedEpsilon is the ε the endpoint would charge on success.
	QuotedEpsilon float64 `json:"quoted_epsilon,omitempty"`
	// SpentEpsilon is the ε actually committed against the tenant's
	// budget (0 when the request was refused, failed, or was free).
	SpentEpsilon float64 `json:"spent_epsilon,omitempty"`
	// Outcome is the reservation outcome: "committed" (budget charged),
	// "refused" (admission denied), "free" (no-spend endpoint),
	// "replayed" (idempotent retry served from the durable outcome store
	// without a second charge), or "error" (request failed before or
	// during the release).
	Outcome string `json:"outcome,omitempty"`
	// IdempotencyKey is the client-supplied Idempotency-Key header (""
	// when the request carried none).
	IdempotencyKey string `json:"idem_key,omitempty"`
	// Start is the request's start timestamp in clock units.
	Start int64 `json:"start"`
	// Duration is the request's duration in clock units (ns under
	// WallClock, ticks under LogicalClock).
	Duration int64 `json:"duration"`
}

// accessLine is AccessRecord with the NDJSON type discriminator.
type accessLine struct {
	Type string `json:"type"`
	AccessRecord
}

// AccessLog writes NDJSON "access" lines, one per request. A nil
// *AccessLog is a valid no-op sink. The log never reads a clock —
// timestamps arrive in the record, already taken by the caller's
// Observer — so attaching or detaching an access log cannot perturb a
// deterministic run's tick stream. Write errors are sticky and reported
// by Err, mirroring Tracer.
type AccessLog struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewAccessLog returns an access log writing NDJSON records to w.
func NewAccessLog(w io.Writer) *AccessLog {
	return &AccessLog{w: w}
}

// Record writes one access-log line (nil-safe).
func (l *AccessLog) Record(r AccessRecord) {
	if l == nil {
		return
	}
	b, err := json.Marshal(accessLine{Type: "access", AccessRecord: r})
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(b); err != nil {
		l.err = err
	}
}

// Err returns the first write or encoding error the log has hit
// (nil-safe).
func (l *AccessLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
