package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one parsed line of `go test -bench -benchmem` output —
// the unit of the repository's machine-readable perf trajectory
// (BENCH_*.json artifacts written by cmd/dplearn-bench).
type BenchResult struct {
	// Name is the benchmark name with the -cpu suffix stripped
	// (BenchmarkSum/workers=4-8 → Sum/workers=4).
	Name string `json:"name"`
	// Workers is the worker fan-out parsed from a "workers=N" sub-bench
	// component, or 0 when the benchmark does not sweep workers.
	Workers int `json:"workers,omitempty"`
	// Procs is the GOMAXPROCS suffix of the bench line (the -N tail).
	Procs int `json:"procs,omitempty"`
	// Iterations is the b.N the framework settled on.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the reported per-op costs;
	// Bytes/Allocs are present only under -benchmem.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// BenchReport is the JSON artifact shape: the environment header lines
// (goos/goarch/pkg/cpu) plus the parsed results.
type BenchReport struct {
	Package string        `json:"package,omitempty"`
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// ParseBench parses the text output of `go test -bench . -benchmem`:
// header lines (goos:, goarch:, pkg:, cpu:) fill the report envelope,
// Benchmark lines become results, and everything else (PASS, ok, test
// log noise) is skipped.
func ParseBench(r io.Reader) (*BenchReport, error) {
	rep := &BenchReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkName-8  b.N  ns/op [B/op allocs/op]"
// line.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return BenchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	res := BenchResult{Name: name, Procs: procs, Iterations: iters, Workers: parseWorkers(name)}
	// The remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, true
}

// parseWorkers extracts N from a "workers=N" component of a sub-bench
// name, defaulting to 0.
func parseWorkers(name string) int {
	for _, part := range strings.Split(name, "/") {
		if rest, ok := strings.CutPrefix(part, "workers="); ok {
			if n, err := strconv.Atoi(rest); err == nil {
				return n
			}
		}
	}
	return 0
}

// WriteBenchJSON writes the report as indented JSON (a stable, diffable
// artifact).
func (rep *BenchReport) WriteBenchJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return err
	}
	return nil
}

// MergeBenchReports merges reports from several packages into one,
// prefixing result names with the package's last path component when
// packages differ.
func MergeBenchReports(reps []*BenchReport) *BenchReport {
	if len(reps) == 1 {
		return reps[0]
	}
	out := &BenchReport{}
	for _, r := range reps {
		if out.Goos == "" {
			out.Goos, out.Goarch, out.CPU = r.Goos, r.Goarch, r.CPU
		}
		prefix := ""
		if r.Package != "" {
			parts := strings.Split(r.Package, "/")
			prefix = parts[len(parts)-1] + "."
		}
		for _, res := range r.Results {
			res.Name = prefix + res.Name
			out.Results = append(out.Results, res)
		}
	}
	return out
}
