package obs

import (
	"sync/atomic"
	"time"
)

// Clock is the single source of timestamps for the observability layer.
// Instrumented code must never call time.Now directly: routing every
// read through a Clock is what lets deterministic runs swap in a
// LogicalClock and keep golden outputs bit-identical with tracing
// enabled.
type Clock interface {
	// Now returns the current time in the clock's own unit —
	// nanoseconds for WallClock, monotonic ticks for LogicalClock.
	Now() int64
}

// WallClock reads the system clock (Unix nanoseconds). Use it in CLIs
// and servers where humans read the durations.
type WallClock struct{}

// Now returns time.Now().UnixNano().
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// LogicalClock is a deterministic clock: each Now advances a shared
// atomic counter by one tick. Durations then count clock *reads*, not
// elapsed time — reproducible for a serial run, and never a source of
// wall-clock nondeterminism in golden tests. The zero value is ready to
// use.
type LogicalClock struct {
	t atomic.Int64
}

// Now advances the clock one tick and returns it.
func (l *LogicalClock) Now() int64 { return l.t.Add(1) }
