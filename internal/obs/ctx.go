package obs

import "context"

// spanKey is the context key under which the current span travels.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span. A nil
// span is stored as-is; SpanFromContext then returns nil, so the
// round-trip stays nil-safe end to end.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpanCtx opens a span as a child of the span carried by ctx (or a
// root span on the observer when ctx carries none) and returns both the
// derived context and the span. It is the one-call idiom for
// instrumented functions that take a context:
//
//	ctx, sp := o.StartSpanCtx(ctx, "fit")
//	defer sp.End()
//
// Nil-safe throughout: with no observer, no tracer, no clock, and no
// parent span, the returned span is nil and ctx is returned unchanged.
func (o *Observer) StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	var sp *Span
	if parent != nil {
		sp = parent.Child(name)
	} else {
		sp = o.Span(name)
	}
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp), sp
}
