package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewServeMux builds the opt-in observability endpoint:
//
//	/metrics     — Prometheus text exposition of reg
//	/debug/vars  — expvar (stdlib JSON variables, incl. a registry dump)
//	/debug/pprof — the full net/http/pprof suite, when withPprof is set
//
// The pprof handlers are wired explicitly rather than through the
// package's init-time registration on http.DefaultServeMux, so binaries
// that do not pass -pprof never expose profiling.
func NewServeMux(reg *Registry, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is abort the body.
			return
		}
	})
	publishExpvar(reg)
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// expvarOnce guards the process-global expvar name. expvar.Publish
// panics on duplicates, and tests build several muxes.
var expvarOnce sync.Once

// expvarReg is the registry currently exported under "dplearn_metrics";
// guarded by expvarMu so late-constructed registries still show up.
var (
	expvarMu  sync.Mutex
	expvarReg *Registry
)

func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("dplearn_metrics", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			return r.expvarSnapshot()
		}))
	})
}

// expvarSnapshot renders the registry as a JSON-friendly map:
// family name -> {series label string -> value}.
func (r *Registry) expvarSnapshot() map[string]map[string]any {
	out := make(map[string]map[string]any)
	for _, fam := range r.snapshotFamilies() {
		m := make(map[string]any)
		for _, s := range fam.sortedSeries() {
			key := renderLabels(s.labels)
			if key == "" {
				key = "{}"
			}
			switch fam.kind {
			case kindCounter:
				m[key] = s.c.Value()
			case kindGauge:
				m[key] = s.g.Value()
			default:
				_, sum, count := s.h.Snapshot()
				m[key] = map[string]any{"sum": sum, "count": count}
			}
		}
		out[fam.name] = m
	}
	return out
}

// shutdownGrace bounds how long Serve's shutdown func waits for
// in-flight scrapes to finish before force-closing their connections. A
// scrape is small, so two seconds is generous; a hung pprof stream must
// not stall process exit past it.
var shutdownGrace = 2 * time.Second

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the bound listener address (useful with ":0")
// and a shutdown func. The server lives for the duration of the run;
// CLIs call the shutdown func on exit. Shutdown is graceful: the
// listener closes immediately (no new scrapes), in-flight requests get
// shutdownGrace to complete — a half-written /metrics body would read
// as a torn scrape upstream — and whatever remains is force-closed.
func Serve(addr string, reg *Registry, withPprof bool) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewServeMux(reg, withPprof)}
	go func() {
		// ErrServerClosed on shutdown; anything else is lost by design —
		// an observability endpoint must never take the workload down.
		_ = srv.Serve(ln)
	}()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Grace expired with requests still in flight: drop them.
			_ = srv.Close()
		}
	}
	return ln.Addr().String(), shutdown, nil
}
