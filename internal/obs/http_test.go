package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the registry every exposition test renders: a
// deterministic fixture shaped like a real run (risk-cache counters,
// worker-utilization series, a posterior-timing histogram), so the
// golden file doubles as documentation of the /metrics payload.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("dplearn_risk_cache_hits_total", "risk-vector cache hits").Add(7)
	reg.Counter("dplearn_risk_cache_misses_total", "risk-vector cache misses").Add(2)
	reg.Counter("dplearn_risk_cache_evictions_total", "risk-vector cache evictions").Add(1)
	reg.Counter("dplearn_parallel_runs_total", "parallel-engine runs by execution mode", "mode", "parallel").Add(3)
	reg.Counter("dplearn_parallel_runs_total", "parallel-engine runs by execution mode", "mode", "serial").Add(2)
	reg.Counter("dplearn_parallel_chunks_total", "index chunks processed by the parallel engine").Add(40)
	reg.Counter("dplearn_parallel_worker_chunks_total", "chunks claimed per worker slot (utilization)", "worker", "0").Add(25)
	reg.Counter("dplearn_parallel_worker_chunks_total", "chunks claimed per worker slot (utilization)", "worker", "1").Add(15)
	reg.Gauge("dplearn_build_info", `build marker with a "quoted" label`, "version", `v0\dev`).Set(1)
	h := reg.Histogram("dplearn_gibbs_posterior_ticks", "posterior normalization duration in clock ticks", []float64{100, 10000, 1000000})
	h.Observe(50)
	h.Observe(5000)
	h.Observe(2000000)
	return reg
}

// TestMetricsEndpointGolden serves the fixture registry through the real
// mux and pins the /metrics payload byte-for-byte against a golden file
// (refresh with `go test ./internal/obs -run Golden -update`). The
// payload is also checked line-by-line for Prometheus text-format
// plausibility so the golden cannot drift into an unparseable state.
func TestMetricsEndpointGolden(t *testing.T) {
	srv := httptest.NewServer(NewServeMux(goldenRegistry(), false))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("/metrics drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, body, want)
	}

	checkPrometheusText(t, string(body))
	for _, series := range []string{
		"dplearn_risk_cache_hits_total 7",
		`dplearn_parallel_worker_chunks_total{worker="0"} 25`,
		`dplearn_gibbs_posterior_ticks_bucket{le="+Inf"} 3`,
		"dplearn_gibbs_posterior_ticks_count 3",
	} {
		if !strings.Contains(string(body), series+"\n") {
			t.Errorf("/metrics missing series %q", series)
		}
	}
}

// checkPrometheusText is a minimal text-format parser: every line must
// be a comment (# HELP / # TYPE) or `name{labels} value`, and every
// sample's family must have a preceding # TYPE line.
func checkPrometheusText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[3])
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i > 0 {
			name = name[:i]
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, line)
		}
		if strings.Count(line, " ") < 1 {
			t.Fatalf("line %d: no value field in %q", ln+1, line)
		}
	}
}

// TestServeMuxPprofAndExpvar smoke-tests the debug endpoints: pprof is
// mounted only when requested, and /debug/vars serves JSON carrying the
// registry snapshot.
func TestServeMuxPprofAndExpvar(t *testing.T) {
	reg := goldenRegistry()

	withPprof := httptest.NewServer(NewServeMux(reg, true))
	defer withPprof.Close()
	resp, err := http.Get(withPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(withPprof.URL + "/debug/pprof/symbol")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(withPprof.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar payload is not JSON: %v", err)
	}
	resp.Body.Close()
	snap, ok := vars["dplearn_metrics"]
	if !ok {
		t.Fatal("expvar payload missing dplearn_metrics")
	}
	var metrics map[string]map[string]any
	if err := json.Unmarshal(snap, &metrics); err != nil {
		t.Fatalf("dplearn_metrics is not a registry snapshot: %v", err)
	}
	if _, ok := metrics["dplearn_risk_cache_hits_total"]; !ok {
		t.Fatal("expvar snapshot missing risk-cache counter")
	}

	noPprof := httptest.NewServer(NewServeMux(reg, false))
	defer noPprof.Close()
	resp, err = http.Get(noPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof should be absent without opt-in, got status %d", resp.StatusCode)
	}
}

// TestServeLifecycle binds :0, fetches /metrics over a real listener,
// and shuts down — the exact path the CLIs use for -metrics-addr.
func TestServeLifecycle(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", goldenRegistry(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "dplearn_risk_cache_hits_total 7") {
		t.Fatal("served /metrics missing fixture series")
	}
}

// TestServeGracefulShutdown pins the drain behavior: a scrape in flight
// when shutdown starts completes intact (no torn /metrics body), new
// connections are refused, and shutdown returns promptly.
func TestServeGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	inHandler := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "drained-in-full")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	addr := ln.Addr().String()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-inHandler

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// The listener closes before in-flight requests drain: a new scrape
	// must be refused while the old one is still being served.
	deadline := time.Now().Add(shutdownGrace)
	for {
		if _, err := http.Get("http://" + addr + "/slow"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting during shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape failed during graceful shutdown: %v", r.err)
	}
	if r.body != "drained-in-full" {
		t.Fatalf("in-flight scrape torn: %q", r.body)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown did not drain within grace: %v", err)
	}
}

// TestServeShutdownForceClosesHungRequests pins the grace bound: a
// handler that never finishes cannot stall the shutdown func past
// shutdownGrace.
func TestServeShutdownForceClosesHungRequests(t *testing.T) {
	old := shutdownGrace
	shutdownGrace = 50 * time.Millisecond
	defer func() { shutdownGrace = old }()

	reg := goldenRegistry()
	addr, stop, err := Serve("127.0.0.1:0", reg, true)
	if err != nil {
		t.Fatal(err)
	}
	// A 30-second CPU profile stream is the canonical hung scrape.
	go func() {
		resp, err := http.Get("http://" + addr + "/debug/pprof/profile?seconds=30")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait until the profile request is being served.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	stop()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v, not bounded by the %v grace", elapsed, shutdownGrace)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}
