package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// LedgerRecord is one line of the privacy ledger: the runtime account of
// a single differentially-private release. It is the dynamic mirror of a
// mechanism.SpendRecord — the ledger stays decoupled from the mechanism
// package so that obs remains a pure-stdlib leaf; the accountant's
// observer hook copies the fields across.
type LedgerRecord struct {
	// Seq is the accountant's monotonic sequence number: the arrival
	// order of the spend under the accountant's lock.
	Seq uint64 `json:"seq"`
	// Mechanism is the release's kind ("gibbs", "laplace", ...).
	Mechanism string `json:"mechanism,omitempty"`
	// Sensitivity is the query's global sensitivity (Δq or ΔR̂).
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// Epsilon and Delta are the (ε, δ) guarantee spent by the release.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta,omitempty"`
	// Outcomes is the release's outcome domain size (|Θ| for a Gibbs
	// draw, the output dimension for a Laplace vector), 0 if unknown.
	Outcomes int `json:"outcomes,omitempty"`
	// Duration is the release's duration in clock units (ns under
	// WallClock, ticks under LogicalClock), 0 if untimed.
	Duration int64 `json:"duration,omitempty"`
	// Span is the id of the trace span enclosing the release, if any.
	Span uint64 `json:"span,omitempty"`
	// Trace is the 32-hex-digit W3C trace id of the request that caused
	// the release, if the release ran under a request span. omitempty
	// keeps pre-tracing ledger NDJSON byte-identical on round-trip and
	// the ComposeBasic cross-check untouched.
	Trace string `json:"trace,omitempty"`
}

// ledgerLine is LedgerRecord with the NDJSON type discriminator.
type ledgerLine struct {
	Type string `json:"type"`
	LedgerRecord
}

// Ledger accumulates the privacy ledger of one run. It is safe for
// concurrent use; a nil *Ledger is a valid no-op sink. When a Tracer is
// attached, every record is additionally emitted as a "ledger" NDJSON
// line into the trace stream, interleaved with spans.
type Ledger struct {
	mu     sync.Mutex
	recs   []LedgerRecord
	tracer *Tracer
}

// NewLedger returns an empty ledger. tracer may be nil; when set, each
// Record is also written to the trace as an NDJSON "ledger" line.
func NewLedger(tracer *Tracer) *Ledger {
	return &Ledger{tracer: tracer}
}

// Record appends one release to the ledger (nil-safe).
func (l *Ledger) Record(r LedgerRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.recs = append(l.recs, r)
	tr := l.tracer
	l.mu.Unlock()
	if tr != nil {
		tr.emit(ledgerLine{Type: "ledger", LedgerRecord: r})
	}
}

// Len returns the number of recorded releases (nil-safe).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of the ledger sorted by sequence number — the
// audit order of the releases.
func (l *Ledger) Records() []LedgerRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]LedgerRecord(nil), l.recs...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Composed returns the basic sequential composition (Σεᵢ, Σδᵢ) of the
// ledger via ComposeBasic, which sums in a canonical value order so the
// result is bit-identical to mechanism.Accountant.BasicComposition on
// the same multiset of guarantees, for every arrival order and worker
// count.
func (l *Ledger) Composed() (epsilon, delta float64) {
	recs := l.Records()
	eps := make([]float64, len(recs))
	del := make([]float64, len(recs))
	for i, r := range recs {
		eps[i], del[i] = r.Epsilon, r.Delta
	}
	return ComposeBasic(eps, del)
}

// ComposeBasic is the canonical basic-composition sum shared (by exact
// algorithm, not by import) with mechanism.Accountant.BasicComposition:
// the (ε, δ) pairs are sorted ascending by ε then δ, and each component
// is summed with Neumaier-compensated (Kahan) addition. The canonical
// order makes the composed guarantee a pure function of the *multiset*
// of spends — reproducible when concurrent workers interleave their
// spends differently across runs or worker counts.
func ComposeBasic(eps, del []float64) (epsilon, delta float64) {
	idx := make([]int, len(eps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if eps[ia] != eps[ib] { //dplint:ignore floateq canonical-order tie test: exact value comparison is the point
			return eps[ia] < eps[ib]
		}
		return del[ia] < del[ib]
	})
	var se, ce, sd, cd float64
	for _, i := range idx {
		se, ce = kahanAdd(se, ce, eps[i])
		sd, cd = kahanAdd(sd, cd, del[i])
	}
	return se + ce, sd + cd
}

// kahanAdd is one Neumaier-compensated accumulation step, mirroring
// mathx.KahanSum.Add exactly (same branch, same operation order) so the
// ledger's sums reproduce the accountant's bit-for-bit.
func kahanAdd(sum, c, x float64) (newSum, newC float64) {
	t := sum + x
	if math.Abs(sum) >= math.Abs(x) {
		c += (sum - t) + x
	} else {
		c += (x - t) + sum
	}
	return t, c
}

// WriteNDJSON writes the ledger (in sequence order) as NDJSON "ledger"
// lines — the same shape the Tracer interleaves into a trace stream.
func (l *Ledger) WriteNDJSON(w io.Writer) error {
	for _, r := range l.Records() {
		b, err := json.Marshal(ledgerLine{Type: "ledger", LedgerRecord: r})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadLedgerNDJSON extracts the ledger records from an NDJSON stream,
// skipping span and event lines, and returns them sorted by sequence
// number. Lines that are not valid JSON objects are an error — the
// ledger is an audit artifact, so a corrupt line must not be dropped
// silently.
func ReadLedgerNDJSON(r io.Reader) ([]LedgerRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []LedgerRecord
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec ledgerLine
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if rec.Type == "ledger" {
			out = append(out, rec.LedgerRecord)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
