package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry: counters, gauges, and
// fixed-bucket histograms, each identified by a metric family name plus
// an optional, fixed label set. Get-or-create accessors make call sites
// self-registering; exposition (prometheus.go) renders families in
// sorted name order and series in sorted label order, so the /metrics
// payload is stable and golden-testable.
//
// Registry is safe for concurrent use. The get-or-create path takes a
// mutex, so hot loops should resolve their instruments once and hold
// the returned pointer; Counter/Gauge/Histogram updates themselves are
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// metricKind discriminates the family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name with its help text and labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only
	series  map[string]*series
}

// series is one labeled instrument within a family.
type series struct {
	labels []labelPair
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type labelPair struct{ k, v string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(pairs []labelPair) string {
	var b strings.Builder
	for _, p := range pairs {
		b.WriteString(p.k)
		b.WriteByte('\x00')
		b.WriteString(p.v)
		b.WriteByte('\x00')
	}
	return b.String()
}

// parseLabels validates and sorts a k1, v1, k2, v2, ... variadic list.
func parseLabels(labels []string) []labelPair {
	if len(labels)%2 != 0 {
		panic("obs: labels must come in key/value pairs")
	}
	pairs := make([]labelPair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if labels[i] == "" {
			panic("obs: empty label key")
		}
		pairs = append(pairs, labelPair{k: labels[i], v: labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	return pairs
}

// getOrCreate resolves the series for (name, labels), creating family
// and series as needed. Re-registering a name with a different kind is
// a programming error and panics.
func (r *Registry) getOrCreate(name, help string, kind metricKind, buckets []float64, labels []string) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	pairs := parseLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, fam.kind))
	}
	key := labelKey(pairs)
	s, ok := fam.series[key]
	if !ok {
		s = &series{labels: pairs}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(fam.buckets)
		}
		fam.series[key] = s
	}
	return s
}

// Counter returns the monotonically increasing counter for (name,
// labels), creating it on first use. labels are key/value pairs:
// r.Counter("dplearn_risk_cache_hits_total", "…", "cache", "risks").
// On a nil registry it returns a nil (no-op) counter, so instrumented
// code never branches on whether metrics are wired.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use
// (nil registry → nil no-op gauge).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindGauge, nil, labels).g
}

// Histogram returns the fixed-bucket histogram for (name, labels). The
// bucket upper bounds must be sorted ascending; they are fixed by the
// first registration of the family and shared by all its series (the
// Prometheus histogram contract). A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be sorted ascending")
		}
	}
	return r.getOrCreate(name, help, kindHistogram, buckets, labels).h
}

// Counter is a lock-free monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (nil-safe; negative n panics — counters only go up).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (nil-safe).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (nil-safe).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta via compare-and-swap (nil-safe).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (nil-safe).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts of observations at most
// each upper bound, plus a running sum and total count. Observation is
// lock-free (atomic per-bucket adds).
//
// Tail buckets (the upper half of the slots, including +Inf) can carry
// an exemplar: the trace id and value of the most recent traced
// observation that landed there. Exemplars answer "which request is
// behind that p99 bucket count" directly from a /metrics scrape.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // one per bound, plus the +Inf overflow slot
	sum       Gauge
	total     atomic.Uint64
	exemplars []atomic.Pointer[exemplar] // one per counts slot; tail slots only
}

// exemplar pairs one observed value with the trace id of the request
// that produced it.
type exemplar struct {
	trace string
	value float64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one sample (nil-safe).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one sample and, when trace is non-empty and
// the sample lands in a tail bucket, attaches (trace, v) as that
// bucket's exemplar (last traced observation wins). An empty trace is
// exactly Observe, so the bucket counts — and hence the goldened
// /metrics families — remain a pure function of the request history:
// only requests that themselves carried a traceparent can surface in
// exemplar annotations.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	if trace != "" && h.tailBucket(idx) {
		h.exemplars[idx].Store(&exemplar{trace: trace, value: v})
	}
}

// tailBucket reports whether slot idx is in the exemplar-carrying upper
// half of the bucket slots (always including the +Inf overflow slot).
func (h *Histogram) tailBucket(idx int) bool {
	return idx >= len(h.counts)/2
}

// exemplarAt returns slot idx's exemplar, or nil.
func (h *Histogram) exemplarAt(idx int) *exemplar {
	if h == nil || idx >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[idx].Load()
}

// Snapshot returns the cumulative bucket counts (one per bound, then
// +Inf), the sum, and the total count.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	cumulative = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return cumulative, h.sum.Value(), h.total.Load()
}

// snapshotFamilies returns a stable-ordered copy of the registry for
// exposition: families sorted by name, series sorted by label key.
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns f's series in canonical label order.
func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}
