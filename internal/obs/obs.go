// Package obs is the library's runtime observability subsystem: a
// structured trace/ledger API, a metrics registry, and exporters
// (Prometheus text exposition, expvar, pprof) — all built on the standard
// library alone, mirroring how the static-analysis framework
// (internal/analysis) re-implements go/analysis without external
// dependencies.
//
// The package is the dynamic counterpart of the acctlint static check:
// where the linter proves at build time that every release *registers*
// its Guarantee, the privacy ledger records at run time what each
// release *actually* leaked (mechanism kind, sensitivity, ε spent,
// outcome domain size, duration), turning the Accountant's ε-spend into
// an auditable signal — the operational analogue of the paper's
// mutual-information accounting of the Ẑ → θ channel (Theorem 4.2).
//
// # Determinism contract
//
// Instrumented hot paths must never read the wall clock directly: every
// timestamp flows through a Clock. In deterministic runs (golden tests,
// seeded experiments) a LogicalClock is injected instead of WallClock,
// so enabling tracing cannot perturb released values — instrumentation
// only ever observes computations, it does not reorder or re-seed them.
// The golden determinism test at the module root pins this: the pipeline
// produces bit-identical output with tracing on and off.
//
// # Wiring
//
// An Observer bundles a Tracer, a metrics Registry, and a Clock, and is
// threaded through parallel.Options (and hence core.Config.Parallel)
// into every hot path. A nil Observer — and a nil Tracer, Span, or
// Ledger — is a valid no-op sink, so library code instruments
// unconditionally and pays a single pointer test when observability is
// off.
package obs

// Observer bundles the three observability sinks that instrumented code
// needs: a Tracer for spans and typed events, a Registry for metrics,
// and a Clock for timestamps. Any field may be nil; every method is
// nil-safe on a nil *Observer too, so call sites never branch.
type Observer struct {
	// Tracer receives spans and typed events; nil disables tracing.
	Tracer *Tracer
	// Metrics receives counters, gauges, and histograms; nil disables
	// metric collection.
	Metrics *Registry
	// Clock stamps durations fed into ledger records and histograms.
	// Nil falls back to the Tracer's clock, then to no timing (Now
	// returns 0). Deterministic runs inject a LogicalClock.
	Clock Clock
}

// Span starts a root span (nil-safe). With a Tracer the span emits;
// with only a Clock it is silent — it consumes identical clock reads
// but writes nothing — so logical tick streams (and every /metrics
// duration derived from them) are bit-identical with tracing on and
// off. With neither, Span returns nil.
func (o *Observer) Span(name string) *Span {
	if o == nil {
		return nil
	}
	if o.Tracer != nil {
		return o.Tracer.StartSpan(name)
	}
	if o.Clock != nil {
		return newSilentSpan(o.Clock, name, "")
	}
	return nil
}

// RequestSpan starts a root span bound to a request's TraceContext
// (nil-safe; silent when only a Clock is wired, like Span). Descendant
// spans created with Child or StartSpanCtx inherit the trace id.
func (o *Observer) RequestSpan(name string, tc TraceContext) *Span {
	if o == nil {
		return nil
	}
	if o.Tracer != nil {
		return o.Tracer.StartRequestSpan(name, tc)
	}
	if o.Clock != nil {
		return newSilentSpan(o.Clock, name, tc.TraceID())
	}
	return nil
}

// Now reads the observer's clock (nil-safe; 0 when no clock is wired).
func (o *Observer) Now() int64 {
	if o == nil {
		return 0
	}
	if o.Clock != nil {
		return o.Clock.Now()
	}
	if o.Tracer != nil && o.Tracer.clock != nil {
		return o.Tracer.clock.Now()
	}
	return 0
}

// Reg returns the observer's metrics registry, or nil (nil-safe).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
