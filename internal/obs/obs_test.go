package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestNilSafety exercises every instrument and trace call on nil
// receivers: the whole point of the nil-as-no-op contract is that
// library code instruments unconditionally, so a panic here would break
// every uninstrumented caller.
func TestNilSafety(t *testing.T) {
	var o *Observer
	sp := o.Span("x")
	sp.SetAttr("k", 1)
	sp.Event("e", nil)
	sp.End()
	if sp.Child("y") != nil {
		t.Fatal("nil span child should be nil")
	}
	if o.Now() != 0 {
		t.Fatal("nil observer Now should be 0")
	}

	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	r.Histogram("h", "", []float64{1}).Observe(2)
	if r.Counter("c", "").Value() != 0 || r.Gauge("g", "").Value() != 0 {
		t.Fatal("nil instruments should read zero")
	}

	var l *Ledger
	l.Record(LedgerRecord{Epsilon: 1})
	if l.Len() != 0 || l.Records() != nil {
		t.Fatal("nil ledger should stay empty")
	}
	if e, d := l.Composed(); e != 0 || d != 0 {
		t.Fatal("nil ledger should compose to zero")
	}

	var tr *Tracer
	if tr.StartSpan("x") != nil {
		t.Fatal("nil tracer span should be nil")
	}
	if tr.Err() != nil {
		t.Fatal("nil tracer should have no error")
	}
}

// TestObserverPartialWiring checks the Clock fallback chain: explicit
// Clock first, then the Tracer's clock, then zero.
func TestObserverPartialWiring(t *testing.T) {
	clock := &LogicalClock{}
	o := &Observer{Tracer: NewTracer(&bytes.Buffer{}, clock)}
	if o.Now() == 0 {
		t.Fatal("observer should fall back to the tracer's clock")
	}
	explicit := &LogicalClock{}
	o2 := &Observer{Clock: explicit}
	o2.Now()
	if explicit.Now() != 2 {
		t.Fatal("explicit clock should have advanced")
	}
	if (&Observer{}).Now() != 0 {
		t.Fatal("clockless observer should return 0")
	}
}

// TestTraceLedgerRoundTrip writes spans, events, and ledger records
// through one tracer and reads the ledger back out of the NDJSON
// stream, checking the canonical composition survives the round trip
// bit-for-bit.
func TestTraceLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	clock := &LogicalClock{}
	tr := NewTracer(&buf, clock)
	led := NewLedger(tr)

	root := tr.StartSpan("fit")
	root.SetAttr("n", 60)
	child := root.Child("gibbs.posterior")
	child.Event("normalized", map[string]any{"thetas": 25})
	led.Record(LedgerRecord{Seq: 0, Mechanism: "gibbs", Sensitivity: 1.0 / 60, Epsilon: 0.75, Outcomes: 25, Duration: 3, Span: root.ID()})
	led.Record(LedgerRecord{Seq: 1, Mechanism: "laplace", Sensitivity: 2, Epsilon: 0.25, Delta: 1e-9, Outcomes: 16})
	child.End()
	child.End() // double End is a no-op
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadLedgerNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d ledger records, want 2", len(recs))
	}
	if recs[0].Mechanism != "gibbs" || recs[0].Outcomes != 25 || recs[0].Span != root.ID() {
		t.Fatalf("record 0 mangled: %+v", recs[0])
	}
	if recs[1].Delta != 1e-9 {
		t.Fatalf("record 1 lost delta: %+v", recs[1])
	}
	wantE, wantD := ComposeBasic([]float64{0.75, 0.25}, []float64{0, 1e-9})
	gotE, gotD := led.Composed()
	if math.Float64bits(gotE) != math.Float64bits(wantE) || math.Float64bits(gotD) != math.Float64bits(wantD) {
		t.Fatalf("composed (%g,%g) != (%g,%g)", gotE, gotD, wantE, wantD)
	}

	// WriteNDJSON → ReadLedgerNDJSON is also lossless.
	var out bytes.Buffer
	if err := led.WriteNDJSON(&out); err != nil {
		t.Fatal(err)
	}
	again, err := ReadLedgerNDJSON(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0] != recs[0] || again[1] != recs[1] {
		t.Fatalf("WriteNDJSON round trip mangled records: %+v", again)
	}
}

// TestReadLedgerRejectsCorruptLines pins the audit-artifact contract: a
// malformed line is an error, never silently skipped.
func TestReadLedgerRejectsCorruptLines(t *testing.T) {
	_, err := ReadLedgerNDJSON(strings.NewReader("{\"type\":\"ledger\",\"epsilon\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("corrupt line should be an error")
	}
}

// TestComposeBasicOrderInvariance checks the canonical-order property
// the whole ledger design rests on: any permutation of the spend
// multiset composes to the same bits.
func TestComposeBasicOrderInvariance(t *testing.T) {
	eps := []float64{0.3, 1e-9, 0.7, 0.1, 0.3, 2.5e-17, 0.9}
	del := []float64{0, 1e-12, 1e-6, 0, 1e-12, 0, 0}
	refE, refD := ComposeBasic(eps, del)
	// Reverse.
	n := len(eps)
	revE := make([]float64, n)
	revD := make([]float64, n)
	for i := range eps {
		revE[n-1-i], revD[n-1-i] = eps[i], del[i]
	}
	gotE, gotD := ComposeBasic(revE, revD)
	if math.Float64bits(gotE) != math.Float64bits(refE) || math.Float64bits(gotD) != math.Float64bits(refD) {
		t.Fatal("reversed multiset composed to different bits")
	}
	// Rotation.
	rotE := append(append([]float64(nil), eps[3:]...), eps[:3]...)
	rotD := append(append([]float64(nil), del[3:]...), del[:3]...)
	gotE, gotD = ComposeBasic(rotE, rotD)
	if math.Float64bits(gotE) != math.Float64bits(refE) || math.Float64bits(gotD) != math.Float64bits(refD) {
		t.Fatal("rotated multiset composed to different bits")
	}
}

// TestSummarizeRender feeds a synthetic trace through Summarize and
// checks the aggregates and the rendered text.
func TestSummarizeRender(t *testing.T) {
	var buf bytes.Buffer
	clock := &LogicalClock{}
	tr := NewTracer(&buf, clock)
	led := NewLedger(tr)
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan("sweep.cell")
		led.Record(LedgerRecord{Seq: uint64(i), Mechanism: "expmech", Epsilon: 0.5})
		sp.End()
	}
	sp := tr.StartSpan("fit")
	sp.Event("note", nil)
	sp.End()

	s, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Spans != 4 || s.Events != 1 || s.Releases != 3 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	wantE, _ := ComposeBasic([]float64{0.5, 0.5, 0.5}, []float64{0, 0, 0})
	if math.Float64bits(s.Epsilon) != math.Float64bits(wantE) {
		t.Fatalf("summary eps %g != %g", s.Epsilon, wantE)
	}
	if len(s.ByName) != 2 || s.ByName[0].Name != "sweep.cell" || s.ByName[0].Count != 3 {
		t.Fatalf("ByName wrong: %+v", s.ByName)
	}
	if len(s.ByMechanism) != 1 || s.ByMechanism[0].Mechanism != "expmech" || s.ByMechanism[0].Count != 3 {
		t.Fatalf("ByMechanism wrong: %+v", s.ByMechanism)
	}

	var out bytes.Buffer
	if err := s.Render(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"3 release(s)", "expmech", "4 span(s)", "sweep.cell"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered summary missing %q:\n%s", want, text)
		}
	}
}

// TestParseBench parses representative `go test -bench -benchmem`
// output, including the workers=N sub-bench convention and header
// lines.
func TestParseBench(t *testing.T) {
	const text = `goos: linux
goarch: amd64
pkg: repro/internal/parallel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSum/workers=1-8         	     100	   5817175 ns/op	    8240 B/op	       2 allocs/op
BenchmarkSum/workers=4-8         	     500	   2457729 ns/op	    9616 B/op	      15 allocs/op
BenchmarkLaplaceRelease-8        	   10000	      1234 ns/op
PASS
ok  	repro/internal/parallel	2.345s
`
	rep, err := ParseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Package != "repro/internal/parallel" || rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	r0 := rep.Results[0]
	if r0.Name != "Sum/workers=1" || r0.Workers != 1 || r0.Procs != 8 ||
		r0.Iterations != 100 || r0.NsPerOp != 5817175 || r0.BytesPerOp != 8240 || r0.AllocsPerOp != 2 {
		t.Fatalf("result 0 wrong: %+v", r0)
	}
	if rep.Results[1].Workers != 4 {
		t.Fatalf("workers not parsed: %+v", rep.Results[1])
	}
	if r2 := rep.Results[2]; r2.Workers != 0 || r2.BytesPerOp != 0 {
		t.Fatalf("result 2 wrong: %+v", r2)
	}

	merged := MergeBenchReports([]*BenchReport{rep, {
		Package: "repro/internal/mechanism",
		Results: []BenchResult{{Name: "LaplaceRelease", Iterations: 1}},
	}})
	if len(merged.Results) != 4 {
		t.Fatalf("merge lost results: %d", len(merged.Results))
	}
	if merged.Results[3].Name != "mechanism.LaplaceRelease" {
		t.Fatalf("merge did not prefix: %q", merged.Results[3].Name)
	}
}

// TestHistogramBuckets pins the cumulative-bucket semantics the
// Prometheus renderer depends on.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ticks", "help", []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	cum, sum, count := h.Snapshot()
	if count != 5 || sum != 5556 {
		t.Fatalf("sum/count wrong: %v %v", sum, count)
	}
	want := []uint64{2, 3, 4, 5} // ≤10, ≤100, ≤1000, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, cum[i], w)
		}
	}
}

// TestRegistryKindConflictPanics pins the registration contract.
func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x", "")
	reg.Gauge("x", "")
}
