package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE header per family, then
// one line per series, families in sorted name order and series in
// sorted label order. Histograms render cumulative le-buckets (ending
// with le="+Inf"), a _sum, and a _count, per the format contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.snapshotFamilies() {
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.sortedSeries() {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam *family, s *series) error {
	switch fam.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(s.labels), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(s.labels), formatValue(s.g.Value()))
		return err
	default:
		cum, sum, count := s.h.Snapshot()
		for i, bound := range fam.buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				fam.name, renderLabels(withLE(s.labels, formatValue(bound))), cum[i],
				renderExemplar(s.h.exemplarAt(i))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			fam.name, renderLabels(withLE(s.labels, "+Inf")), cum[len(cum)-1],
			renderExemplar(s.h.exemplarAt(len(cum)-1))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(s.labels), formatValue(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(s.labels), count)
		return err
	}
}

// renderExemplar renders a bucket exemplar as an OpenMetrics-style
// suffix (" # {trace_id=\"…\"} value"), or "" when the bucket carries
// none. Buckets only carry exemplars when traced requests landed in
// them, so expositions without traceparent traffic are byte-identical
// to the pre-exemplar format.
func renderExemplar(e *exemplar) string {
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + escapeLabelValue(e.trace) + `"} ` + formatValue(e.value)
}

// withLE returns pairs plus a trailing le label, never aliasing the
// series' own slice.
func withLE(pairs []labelPair, le string) []labelPair {
	out := make([]labelPair, len(pairs), len(pairs)+1)
	copy(out, pairs)
	return append(out, labelPair{k: "le", v: le})
}

// renderLabels renders {k="v",...}, or "" for an unlabeled series. The
// caller passes labels already in canonical order; the le label is
// appended last, matching common exposition practice.
func renderLabels(pairs []labelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote, and newline in a
// label value.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
