package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceSummary is the digest of one NDJSON trace: the composed privacy
// spend from the ledger lines plus the top time sinks from the span
// lines. It is what the CLIs print after a -trace run so a human sees
// "what did this run leak, and where did it spend its time" without
// opening the file.
type TraceSummary struct {
	// Spans counts completed spans; Events counts typed events.
	Spans, Events int
	// Releases counts ledger records; Epsilon/Delta is their canonical
	// basic composition (ComposeBasic).
	Releases       int
	Epsilon, Delta float64
	// ByName aggregates span self-time by span name, descending total.
	ByName []SpanStat
	// ByMechanism aggregates ledger spend by mechanism kind.
	ByMechanism []MechanismStat
}

// SpanStat is the per-name aggregate of span durations.
type SpanStat struct {
	Name  string
	Count int
	// Total is Σ(end−start) in the trace's clock unit.
	Total int64
}

// MechanismStat is the per-kind aggregate of ledger spend.
type MechanismStat struct {
	Mechanism string
	Count     int
	Epsilon   float64
}

// Summarize reads an NDJSON trace stream and aggregates it. Unknown
// record types are ignored (forward compatibility); malformed lines are
// errors.
func Summarize(r io.Reader) (*TraceSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	type anyLine struct {
		Type string `json:"type"`
		// span fields
		Name  string `json:"name"`
		Start int64  `json:"start"`
		End   int64  `json:"end"`
		// ledger fields
		Mechanism string  `json:"mechanism"`
		Epsilon   float64 `json:"epsilon"`
		Delta     float64 `json:"delta"`
		Seq       uint64  `json:"seq"`
	}
	s := &TraceSummary{}
	byName := make(map[string]*SpanStat)
	byMech := make(map[string]*MechanismStat)
	var eps, del []float64
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec anyLine
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		switch rec.Type {
		case "span":
			s.Spans++
			st, ok := byName[rec.Name]
			if !ok {
				st = &SpanStat{Name: rec.Name}
				byName[rec.Name] = st
			}
			st.Count++
			st.Total += rec.End - rec.Start
		case "event":
			s.Events++
		case "ledger":
			s.Releases++
			eps = append(eps, rec.Epsilon)
			del = append(del, rec.Delta)
			kind := rec.Mechanism
			if kind == "" {
				kind = "(unlabeled)"
			}
			ms, ok := byMech[kind]
			if !ok {
				ms = &MechanismStat{Mechanism: kind}
				byMech[kind] = ms
			}
			ms.Count++
			ms.Epsilon += rec.Epsilon
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s.Epsilon, s.Delta = ComposeBasic(eps, del)
	for _, st := range byName {
		s.ByName = append(s.ByName, *st)
	}
	sort.Slice(s.ByName, func(i, j int) bool {
		if s.ByName[i].Total != s.ByName[j].Total {
			return s.ByName[i].Total > s.ByName[j].Total
		}
		return s.ByName[i].Name < s.ByName[j].Name
	})
	for _, ms := range byMech {
		s.ByMechanism = append(s.ByMechanism, *ms)
	}
	sort.Slice(s.ByMechanism, func(i, j int) bool {
		if s.ByMechanism[i].Epsilon != s.ByMechanism[j].Epsilon { //dplint:ignore floateq display ordering on aggregated totals, no guarantee depends on the tie
			return s.ByMechanism[i].Epsilon > s.ByMechanism[j].Epsilon
		}
		return s.ByMechanism[i].Mechanism < s.ByMechanism[j].Mechanism
	})
	return s, nil
}

// Render writes the summary as aligned text: the composed privacy spend
// first (the headline number), then the top time sinks.
func (s *TraceSummary) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "privacy ledger: %d release(s), composed eps=%.6g delta=%.3g\n",
		s.Releases, s.Epsilon, s.Delta); err != nil {
		return err
	}
	for _, m := range s.ByMechanism {
		if _, err := fmt.Fprintf(w, "  %-24s %4d release(s)  eps=%.6g\n", m.Mechanism, m.Count, m.Epsilon); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "trace: %d span(s), %d event(s)\n", s.Spans, s.Events); err != nil {
		return err
	}
	top := s.ByName
	if len(top) > 10 {
		top = top[:10]
	}
	for _, st := range top {
		if _, err := fmt.Fprintf(w, "  %-24s %6d span(s)  total=%d\n", st.Name, st.Count, st.Total); err != nil {
			return err
		}
	}
	return nil
}
