package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Tracer writes a structured trace as NDJSON: one JSON object per line,
// each carrying a "type" discriminator ("span", "event", or "ledger").
// Spans form a tree through parent IDs; typed events attach to spans.
// A nil *Tracer is a valid no-op sink.
//
// Tracer is safe for concurrent use. Records are written when a span
// ends (not when it starts), so a trace file lists spans in completion
// order; readers reconstruct the tree from the id/parent fields.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	clock Clock
	ids   atomic.Uint64
	err   error
}

// NewTracer returns a tracer writing NDJSON records to w, stamping them
// with clock (nil defaults to WallClock). Write errors are sticky and
// reported by Err, so hot paths never handle I/O failures inline.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock{}
	}
	return &Tracer{w: w, clock: clock}
}

// Err returns the first write or encoding error the tracer has hit.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// emit marshals one record to a single NDJSON line.
func (t *Tracer) emit(rec any) {
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Span is one timed operation in the trace tree. All methods are
// nil-safe, so instrumented code calls them unconditionally.
//
// A span may be "silent": clock but no tracer. Silent spans consume
// exactly the same clock reads as emitting spans (one at start, one per
// Event, one at End) but write nothing. They exist for tick parity:
// logical-clock tick streams — and therefore every duration histogram
// fed from Observer.Now — are bit-identical whether tracing is wired or
// not, which is what lets the serve /metrics golden hold with tracing
// on and off.
type Span struct {
	tracer *Tracer
	clock  Clock
	id     uint64
	parent uint64
	trace  string
	name   string
	start  int64
	mu     sync.Mutex
	attrs  map[string]any
	ended  bool
}

// SpanRecord is the NDJSON shape of a completed span (type "span").
type SpanRecord struct {
	Type   string         `json:"type"`
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent,omitempty"`
	Trace  string         `json:"trace,omitempty"`
	Name   string         `json:"name"`
	Start  int64          `json:"start"`
	End    int64          `json:"end"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// EventRecord is the NDJSON shape of a typed event (type "event").
type EventRecord struct {
	Type   string         `json:"type"`
	Span   uint64         `json:"span,omitempty"`
	TS     int64          `json:"ts"`
	Kind   string         `json:"kind"`
	Fields map[string]any `json:"fields,omitempty"`
}

// StartSpan opens a root span (nil-safe).
func (t *Tracer) StartSpan(name string) *Span {
	return t.startSpan(name, 0, "")
}

// StartRequestSpan opens a root span bound to a request's TraceContext:
// the span record — and every descendant span, via Child — carries the
// 128-bit trace id, which is what joins the server-side span tree to the
// client's traceparent, the ledger's ε charges, and the access log.
// An invalid (zero) TraceContext yields an ordinary untraced root span.
func (t *Tracer) StartRequestSpan(name string, tc TraceContext) *Span {
	return t.startSpan(name, 0, tc.TraceID())
}

func (t *Tracer) startSpan(name string, parent uint64, trace string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		clock:  t.clock,
		id:     t.ids.Add(1),
		parent: parent,
		trace:  trace,
		name:   name,
		start:  t.clock.Now(),
	}
}

// newSilentSpan opens a span with a clock but no tracer: it times
// itself (preserving tick parity with an emitting span) but writes
// nothing and has no id.
func newSilentSpan(clock Clock, name, trace string) *Span {
	return &Span{
		clock: clock,
		trace: trace,
		name:  name,
		start: clock.Now(),
	}
}

// Child opens a sub-span of s (nil-safe: a nil parent yields nil). The
// parent's trace id propagates, so every span under a request span
// joins back to the request.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	if s.tracer == nil {
		return newSilentSpan(s.clock, name, s.trace)
	}
	return s.tracer.startSpan(name, s.id, s.trace)
}

// ID returns the span's trace-unique id (0 for a nil or silent span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the 32-hex-digit trace id of the request this span
// belongs to ("" for a nil span or a span outside any request trace).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SetAttr attaches a key/value attribute, rendered into the span record
// at End (nil-safe).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// Event emits a typed event attached to s immediately (nil-safe). On a
// silent span the clock is still read — tick parity — but nothing is
// written.
func (s *Span) Event(kind string, fields map[string]any) {
	if s == nil {
		return
	}
	ts := s.clock.Now()
	if s.tracer == nil {
		return
	}
	s.tracer.emit(EventRecord{
		Type:   "event",
		Span:   s.id,
		TS:     ts,
		Kind:   kind,
		Fields: fields,
	})
}

// End closes the span and writes its record. A second End is a no-op,
// as is End on a nil span. A silent span reads the clock exactly like
// an emitting one but writes nothing.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	end := s.clock.Now()
	if s.tracer == nil {
		return
	}
	s.tracer.emit(SpanRecord{
		Type:   "span",
		ID:     s.id,
		Parent: s.parent,
		Trace:  s.trace,
		Name:   s.name,
		Start:  s.start,
		End:    end,
		Attrs:  attrs,
	})
}
