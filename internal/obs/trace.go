package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Tracer writes a structured trace as NDJSON: one JSON object per line,
// each carrying a "type" discriminator ("span", "event", or "ledger").
// Spans form a tree through parent IDs; typed events attach to spans.
// A nil *Tracer is a valid no-op sink.
//
// Tracer is safe for concurrent use. Records are written when a span
// ends (not when it starts), so a trace file lists spans in completion
// order; readers reconstruct the tree from the id/parent fields.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	clock Clock
	ids   atomic.Uint64
	err   error
}

// NewTracer returns a tracer writing NDJSON records to w, stamping them
// with clock (nil defaults to WallClock). Write errors are sticky and
// reported by Err, so hot paths never handle I/O failures inline.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock{}
	}
	return &Tracer{w: w, clock: clock}
}

// Err returns the first write or encoding error the tracer has hit.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// emit marshals one record to a single NDJSON line.
func (t *Tracer) emit(rec any) {
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Span is one timed operation in the trace tree. All methods are
// nil-safe, so instrumented code calls them unconditionally.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	start  int64
	mu     sync.Mutex
	attrs  map[string]any
	ended  bool
}

// spanRecord is the NDJSON shape of a completed span.
type spanRecord struct {
	Type   string         `json:"type"`
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  int64          `json:"start"`
	End    int64          `json:"end"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// eventRecord is the NDJSON shape of a typed event.
type eventRecord struct {
	Type   string         `json:"type"`
	Span   uint64         `json:"span,omitempty"`
	TS     int64          `json:"ts"`
	Kind   string         `json:"kind"`
	Fields map[string]any `json:"fields,omitempty"`
}

// StartSpan opens a root span (nil-safe).
func (t *Tracer) StartSpan(name string) *Span {
	return t.startSpan(name, 0)
}

func (t *Tracer) startSpan(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		id:     t.ids.Add(1),
		parent: parent,
		name:   name,
		start:  t.clock.Now(),
	}
}

// Child opens a sub-span of s (nil-safe: a nil parent yields nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startSpan(name, s.id)
}

// ID returns the span's trace-unique id (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a key/value attribute, rendered into the span record
// at End (nil-safe).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// Event emits a typed event attached to s immediately (nil-safe).
func (s *Span) Event(kind string, fields map[string]any) {
	if s == nil {
		return
	}
	s.tracer.emit(eventRecord{
		Type:   "event",
		Span:   s.id,
		TS:     s.tracer.clock.Now(),
		Kind:   kind,
		Fields: fields,
	})
}

// End closes the span and writes its record. A second End is a no-op,
// as is End on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.emit(spanRecord{
		Type:   "span",
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    s.tracer.clock.Now(),
		Attrs:  attrs,
	})
}
