package obs

import (
	"encoding/hex"
	"fmt"
)

// TraceContext is a W3C Trace Context (traceparent) carrier: a 128-bit
// trace id, the 64-bit id of the caller's span, and the sampled flag.
// It is the wire form of request-scoped tracing — clients inject a
// traceparent header, the serve layer adopts it, and every span, ledger
// line, and access-log line the request causes carries TraceHi/TraceLo
// so offline tools can join them back to the request.
//
// The zero TraceContext is "no context" (Valid returns false): an
// all-zero trace id is invalid per the W3C spec, which conveniently
// makes the zero value the natural "untraced" sentinel.
type TraceContext struct {
	// TraceHi and TraceLo are the high and low 8 bytes of the 128-bit
	// trace id.
	TraceHi, TraceLo uint64
	// Parent is the caller's span id (the parent-id field). Zero is
	// invalid on the wire but tolerated in memory for locally-minted
	// contexts that have not yet passed through a span.
	Parent uint64
	// Sampled is the least-significant trace-flags bit.
	Sampled bool
}

// Valid reports whether the context carries a usable (non-zero) trace id.
func (tc TraceContext) Valid() bool {
	return tc.TraceHi != 0 || tc.TraceLo != 0
}

// TraceID returns the 32-hex-digit trace id ("" for an invalid context).
func (tc TraceContext) TraceID() string {
	if !tc.Valid() {
		return ""
	}
	var b [16]byte
	putUint64(b[0:8], tc.TraceHi)
	putUint64(b[8:16], tc.TraceLo)
	return hex.EncodeToString(b[:])
}

// Traceparent renders the context in W3C traceparent form:
// "00-<32 hex trace id>-<16 hex parent id>-<2 hex flags>".
// An invalid context renders as "" so callers can gate header injection
// on the returned string alone.
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	var b [8]byte
	putUint64(b[:], tc.Parent)
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID() + "-" + hex.EncodeToString(b[:]) + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header. It accepts exactly
// the version-00 fixed layout: 55 bytes, lowercase hex, dash-separated,
// with a non-zero trace id and a non-zero parent id. Anything else is an
// error — a malformed header must not silently start a new trace under a
// half-parsed id.
func ParseTraceparent(s string) (TraceContext, error) {
	if len(s) != 55 {
		return TraceContext{}, fmt.Errorf("obs: traceparent: length %d, want 55", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, fmt.Errorf("obs: traceparent: bad separators in %q", s)
	}
	if s[0:2] != "00" {
		return TraceContext{}, fmt.Errorf("obs: traceparent: unsupported version %q", s[0:2])
	}
	hi, err := parseHex64(s[3:19])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent: trace id: %w", err)
	}
	lo, err := parseHex64(s[19:35])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent: trace id: %w", err)
	}
	if hi == 0 && lo == 0 {
		return TraceContext{}, fmt.Errorf("obs: traceparent: all-zero trace id")
	}
	parent, err := parseHex64(s[36:52])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent: parent id: %w", err)
	}
	if parent == 0 {
		return TraceContext{}, fmt.Errorf("obs: traceparent: all-zero parent id")
	}
	flags, err := parseHexByte(s[53:55])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent: flags: %w", err)
	}
	return TraceContext{TraceHi: hi, TraceLo: lo, Parent: parent, Sampled: flags&1 != 0}, nil
}

// DeriveTraceContext deterministically mints a TraceContext from a
// request seed. Trace ids must be a pure function of the request stream
// — never of the wall clock or a global RNG — so goldens and replayed
// load stay bit-identical. The derivation is two rounds of the
// splitmix64 finalizer over the seed (one per trace-id half) and a third
// for the parent span id; splitmix64 is a bijection on uint64, so
// distinct seeds give distinct ids, and the all-zero id can only arise
// from the two seeds mapping to zero halves, which are remapped.
func DeriveTraceContext(seed int64) TraceContext {
	const golden = 0x9e3779b97f4a7c15 // splitmix64 increment; multiples wrap mod 2^64
	hi := mix64(uint64(seed) + golden)
	lo := mix64(uint64(seed) + golden + golden)
	parent := mix64(uint64(seed) + golden + golden + golden)
	if hi == 0 && lo == 0 {
		lo = 1
	}
	if parent == 0 {
		parent = 1
	}
	return TraceContext{TraceHi: hi, TraceLo: lo, Parent: parent, Sampled: true}
}

// mix64 is the splitmix64 output finalizer (Vigna): a fast, invertible
// avalanche over uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// putUint64 writes v big-endian into b[0:8] (hand-rolled to keep the
// import set minimal).
func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// parseHex64 parses exactly 16 lowercase hex digits. Uppercase is
// rejected: the W3C spec mandates lowercase on the wire, and strictness
// here keeps the round-trip property exact (parse∘format = identity).
func parseHex64(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("field length %d, want 16", len(s))
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		d, ok := hexVal(s[i])
		if !ok {
			return 0, fmt.Errorf("non-hex byte %q", s[i])
		}
		v = v<<4 | uint64(d)
	}
	return v, nil
}

// parseHexByte parses exactly 2 lowercase hex digits.
func parseHexByte(s string) (byte, error) {
	if len(s) != 2 {
		return 0, fmt.Errorf("field length %d, want 2", len(s))
	}
	hiD, ok1 := hexVal(s[0])
	loD, ok2 := hexVal(s[1])
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("non-hex byte in %q", s)
	}
	return hiD<<4 | loD, nil
}

// hexVal decodes one lowercase hex digit.
func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
