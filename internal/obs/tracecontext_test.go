package obs

import (
	"strings"
	"testing"
)

// TestDeriveTraceContextRoundTrip is the round-trip property: for many
// seeds, Derive → Traceparent → Parse is the identity, the context is
// valid, and the header has the exact W3C 00-version shape.
func TestDeriveTraceContextRoundTrip(t *testing.T) {
	seeds := []int64{0, 1, -1, 2, 42, 1 << 20, -(1 << 40), 1<<63 - 1, -1 << 63}
	for s := int64(3); s < 5000; s += 97 {
		seeds = append(seeds, s, -s)
	}
	seen := make(map[string]int64, len(seeds))
	for _, seed := range seeds {
		tc := DeriveTraceContext(seed)
		if !tc.Valid() {
			t.Fatalf("DeriveTraceContext(%d) is invalid: %+v", seed, tc)
		}
		if !tc.Sampled {
			t.Fatalf("DeriveTraceContext(%d) not sampled", seed)
		}
		h := tc.Traceparent()
		if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
			t.Fatalf("DeriveTraceContext(%d).Traceparent() = %q, want 00-<32hex>-<16hex>-01", seed, h)
		}
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", h, err)
		}
		if got != tc {
			t.Fatalf("round trip lost data: %+v -> %q -> %+v", tc, h, got)
		}
		if prev, dup := seen[tc.TraceID()]; dup {
			t.Fatalf("seeds %d and %d derive the same trace id %s", prev, seed, tc.TraceID())
		}
		seen[tc.TraceID()] = seed
	}
}

// TestDeriveTraceContextDeterministic pins the derivation: the ids are a
// pure function of the seed, so a loadgen configuration alone reproduces
// every trace id a traced run emitted.
func TestDeriveTraceContextDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 7, -12345} {
		a, b := DeriveTraceContext(seed), DeriveTraceContext(seed)
		if a != b {
			t.Fatalf("DeriveTraceContext(%d) not deterministic: %+v vs %+v", seed, a, b)
		}
	}
	if DeriveTraceContext(1) == DeriveTraceContext(2) {
		t.Fatal("distinct seeds derived identical contexts")
	}
}

// TestParseTraceparentMalformed is the malformed-header table: every
// entry must be rejected, and rejection must yield a zero (invalid)
// context so callers can branch on Valid() alone.
func TestParseTraceparentMalformed(t *testing.T) {
	valid := DeriveTraceContext(99).Traceparent()
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"long", valid + "0"},
		{"missing dashes", strings.ReplaceAll(valid, "-", "_")},
		{"version 01", "01" + valid[2:]},
		{"version ff", "ff" + valid[2:]},
		{"uppercase hex", strings.ToUpper(valid)},
		{"non-hex trace id", valid[:3] + strings.Repeat("g", 32) + valid[35:]},
		{"non-hex parent id", valid[:36] + strings.Repeat("z", 16) + valid[52:]},
		{"zero trace id", valid[:3] + strings.Repeat("0", 32) + valid[35:]},
		{"zero parent id", valid[:36] + strings.Repeat("0", 16) + valid[52:]},
		{"bad flags", valid[:53] + "xy"},
		{"dash positions shifted", "00" + valid[2:34] + "--" + valid[36:]},
		{"embedded space", valid[:10] + " " + valid[11:]},
		{"embedded newline", valid[:10] + "\n" + valid[11:]},
	}
	for _, tc := range cases {
		got, err := ParseTraceparent(tc.in)
		if err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted a malformed header: %+v", tc.name, tc.in, got)
		}
		if got.Valid() {
			t.Errorf("%s: rejected header still yielded a valid context: %+v", tc.name, got)
		}
	}
}

// TestParseTraceparentFlags pins the sampled-bit handling: flag byte 00
// parses unsampled, 01 sampled, and both round-trip.
func TestParseTraceparentFlags(t *testing.T) {
	tc := DeriveTraceContext(5)
	tc.Sampled = false
	h := tc.Traceparent()
	if !strings.HasSuffix(h, "-00") {
		t.Fatalf("unsampled header %q should end in -00", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got.Sampled {
		t.Fatalf("flags 00 parsed as sampled")
	}
}

// TestTraceparentInvalidContext pins the zero-value behavior: an invalid
// context renders no header and no trace id.
func TestTraceparentInvalidContext(t *testing.T) {
	var tc TraceContext
	if tc.Valid() {
		t.Fatal("zero TraceContext is valid")
	}
	if h := tc.Traceparent(); h != "" {
		t.Fatalf("invalid context rendered header %q", h)
	}
	if id := tc.TraceID(); id != "" {
		t.Fatalf("invalid context rendered trace id %q", id)
	}
}

// FuzzTraceparent fuzzes the strict parser: it must never panic, and
// every header it accepts must re-render byte-identically (parse/format
// round trip on the accepting side).
func FuzzTraceparent(f *testing.F) {
	f.Add(DeriveTraceContext(1).Traceparent())
	f.Add(DeriveTraceContext(-99).Traceparent())
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			if tc.Valid() {
				t.Fatalf("error path returned a valid context for %q", s)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted %q but context is invalid", s)
		}
		if got := tc.Traceparent(); got != s {
			t.Fatalf("accepted %q but re-rendered as %q", s, got)
		}
	})
}
