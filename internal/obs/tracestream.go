package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceData is the decoded contents of one or more observability NDJSON
// streams: the four record kinds a run can produce, separated by type.
// It is what cmd/dplearn-trace reconstructs waterfalls and ε attribution
// from.
type TraceData struct {
	Spans  []SpanRecord
	Events []EventRecord
	Ledger []LedgerRecord
	Access []AccessRecord
}

// Merge appends other's records onto d, so multiple NDJSON files (a
// trace stream plus a separate access log, say) can be read into one
// joined dataset.
func (d *TraceData) Merge(other TraceData) {
	d.Spans = append(d.Spans, other.Spans...)
	d.Events = append(d.Events, other.Events...)
	d.Ledger = append(d.Ledger, other.Ledger...)
	d.Access = append(d.Access, other.Access...)
}

// ReadTraceNDJSON decodes an observability NDJSON stream, dispatching on
// each line's "type" discriminator. Unknown types are skipped (forward
// compatibility, matching ReadLedgerNDJSON), but lines that are not
// valid JSON objects are an error — these are audit artifacts, so a
// corrupt line must not be dropped silently.
func ReadTraceNDJSON(r io.Reader) (TraceData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out TraceData
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &disc); err != nil {
			return TraceData{}, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		var err error
		switch disc.Type {
		case "span":
			var rec SpanRecord
			if err = json.Unmarshal(sc.Bytes(), &rec); err == nil {
				out.Spans = append(out.Spans, rec)
			}
		case "event":
			var rec EventRecord
			if err = json.Unmarshal(sc.Bytes(), &rec); err == nil {
				out.Events = append(out.Events, rec)
			}
		case "ledger":
			var rec ledgerLine
			if err = json.Unmarshal(sc.Bytes(), &rec); err == nil {
				out.Ledger = append(out.Ledger, rec.LedgerRecord)
			}
		case "access":
			var rec accessLine
			if err = json.Unmarshal(sc.Bytes(), &rec); err == nil {
				out.Access = append(out.Access, rec.AccessRecord)
			}
		}
		if err != nil {
			return TraceData{}, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return TraceData{}, err
	}
	return out, nil
}
