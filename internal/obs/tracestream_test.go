package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLedgerRecordBackCompat pins the NDJSON wire shape of trace-less
// ledger records: adding the Trace field must not change a single byte
// of pre-tracing ledgers (omitempty), so existing artifacts round-trip
// and the ComposeBasic cross-check sees the same multiset.
func TestLedgerRecordBackCompat(t *testing.T) {
	rec := LedgerRecord{Seq: 3, Mechanism: "laplace", Sensitivity: 2, Epsilon: 0.25, Outcomes: 16, Duration: 7, Span: 9}
	b, err := json.Marshal(ledgerLine{Type: "ledger", LedgerRecord: rec})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"type":"ledger","seq":3,"mechanism":"laplace","sensitivity":2,"epsilon":0.25,"outcomes":16,"duration":7,"span":9}`
	if string(b) != want {
		t.Fatalf("trace-less ledger line changed shape:\n got %s\nwant %s", b, want)
	}
	got, err := ReadLedgerNDJSON(strings.NewReader(want + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != rec {
		t.Fatalf("round trip: got %+v, want %+v", got, rec)
	}
}

// TestLedgerRecordTraceStamped checks the stamped shape: the trace id
// travels on the wire and survives the reader.
func TestLedgerRecordTraceStamped(t *testing.T) {
	rec := LedgerRecord{Seq: 1, Epsilon: 0.5, Trace: DeriveTraceContext(4).TraceID()}
	b, err := json.Marshal(ledgerLine{Type: "ledger", LedgerRecord: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"trace":"`+rec.Trace+`"`) {
		t.Fatalf("stamped record lost its trace id: %s", b)
	}
	got, err := ReadLedgerNDJSON(bytes.NewReader(append(b, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Trace != rec.Trace {
		t.Fatalf("round trip: got %+v", got)
	}
}

// TestAccessLogRoundTrip writes access records through the NDJSON log
// and reads them back via the trace-stream reader.
func TestAccessLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLog(&buf)
	recs := []AccessRecord{
		{Trace: DeriveTraceContext(11).TraceID(), Tenant: "alpha", Endpoint: "fit", Status: 200,
			QuotedEpsilon: 0.5, SpentEpsilon: 0.5, Outcome: "committed", Start: 2, Duration: 18},
		{Tenant: "beta", Endpoint: "budget", Status: 200, Outcome: "free", Start: 21, Duration: 1},
		{Trace: DeriveTraceContext(12).TraceID(), Tenant: "beta", Endpoint: "summary", Status: 429,
			QuotedEpsilon: 0.05, Outcome: "refused", Start: 23, Duration: 3},
	}
	for _, r := range recs {
		al.Record(r)
	}
	if err := al.Err(); err != nil {
		t.Fatal(err)
	}
	data, err := ReadTraceNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Access) != len(recs) {
		t.Fatalf("got %d access records, want %d", len(data.Access), len(recs))
	}
	for i := range recs {
		if data.Access[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, data.Access[i], recs[i])
		}
	}
}

// TestAccessLogNilSafety pins the no-op contract of a nil log.
func TestAccessLogNilSafety(t *testing.T) {
	var al *AccessLog
	al.Record(AccessRecord{Tenant: "x"})
	if err := al.Err(); err != nil {
		t.Fatalf("nil access log errored: %v", err)
	}
}

// TestReadTraceNDJSONMergesTypes reads a mixed stream — spans, events,
// ledger, access, an unknown future type, and blank lines — and checks
// each record lands in its bucket with unknown types skipped.
func TestReadTraceNDJSONMergesTypes(t *testing.T) {
	stream := strings.Join([]string{
		`{"type":"span","id":1,"trace":"ab","name":"fit","start":0,"end":9}`,
		``,
		`{"type":"event","span":1,"ts":3,"kind":"phase"}`,
		`{"type":"ledger","seq":1,"epsilon":0.5,"trace":"ab"}`,
		`{"type":"access","trace":"ab","tenant":"alpha","endpoint":"fit","status":200,"outcome":"committed","start":0,"duration":9}`,
		`{"type":"novelty","whatever":true}`,
	}, "\n") + "\n"
	data, err := ReadTraceNDJSON(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Spans) != 1 || len(data.Events) != 1 || len(data.Ledger) != 1 || len(data.Access) != 1 {
		t.Fatalf("got %d/%d/%d/%d spans/events/ledger/access, want 1 each",
			len(data.Spans), len(data.Events), len(data.Ledger), len(data.Access))
	}
	if data.Spans[0].Trace != "ab" || data.Ledger[0].Trace != "ab" || data.Access[0].Trace != "ab" {
		t.Fatal("trace ids did not survive the reader")
	}

	other, err := ReadTraceNDJSON(strings.NewReader(`{"type":"span","id":2,"parent":1,"trace":"ab","name":"chunk","start":1,"end":2}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	data.Merge(other)
	if len(data.Spans) != 2 {
		t.Fatalf("Merge: got %d spans, want 2", len(data.Spans))
	}

	if _, err := ReadTraceNDJSON(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("corrupt line silently accepted")
	}
}

// TestSilentSpanTickParity is the determinism keystone: a span tree
// walked with a tracer and one walked silently (clock only) consume
// exactly the same number of clock reads, so every downstream tick
// stream is bit-identical with tracing on and off.
func TestSilentSpanTickParity(t *testing.T) {
	walk := func(o *Observer) int64 {
		sp := o.RequestSpan("req", DeriveTraceContext(1))
		c := sp.Child("inner")
		c.Event("phase", nil)
		c.End()
		sp.End()
		return o.Now()
	}
	var buf bytes.Buffer
	clockOn := &LogicalClock{}
	on := walk(&Observer{Tracer: NewTracer(&buf, clockOn), Clock: clockOn})
	off := walk(&Observer{Clock: &LogicalClock{}})
	if on != off {
		t.Fatalf("tick streams diverge: %d reads with tracer, %d without", on, off)
	}
	if buf.Len() == 0 {
		t.Fatal("traced walk emitted nothing")
	}
}
