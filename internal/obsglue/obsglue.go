// Package obsglue wires the stdlib-only observability subsystem
// (internal/obs) into the command-line binaries: the shared -trace /
// -metrics-addr / -pprof flag surface, the trace-file lifecycle, the
// accountant→ledger bridge, and the post-run trace summary. It exists so
// that internal/obs stays a pure-stdlib leaf with no dependency on the
// mechanism package — the two meet only here, at the edge of the
// process.
package obsglue

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mechanism"
	"repro/internal/obs"
)

// Flags is the observability CLI surface shared by the dplearn binaries.
type Flags struct {
	// Trace is the NDJSON trace/ledger output path ("" disables tracing).
	Trace string
	// MetricsAddr is the listen address of the opt-in HTTP endpoint
	// serving /metrics and /debug/vars ("" disables it; ":0" picks a
	// free port and the bound address is printed to stderr).
	MetricsAddr string
	// Pprof additionally mounts net/http/pprof under /debug/pprof on the
	// metrics endpoint. It requires MetricsAddr.
	Pprof bool
}

// Register installs the three flags on fs (use flag.CommandLine in main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write an NDJSON trace + privacy ledger to this file")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics and /debug/vars on this address (e.g. localhost:9090, :0 for a free port)")
	fs.BoolVar(&f.Pprof, "pprof", false, "also serve /debug/pprof on -metrics-addr")
}

// RunContext builds the root context of one CLI run: it cancels on
// SIGINT/SIGTERM and, when timeout > 0, at the deadline. Cancellation
// is the graceful-drain signal — the parallel engine stops claiming
// chunks but finishes claimed ones, sweeps keep their checkpoints, and
// the ledger still flushes on the way out — so a ^C'd run exits
// non-zero with its books balanced rather than mid-write. A second
// SIGINT kills the process immediately (the default handler is
// restored once the context cancels, per signal.NotifyContext).
//
// The returned stop func releases the signal registration and any
// timer; defer it unconditionally.
func RunContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}

// Runtime is the live observability state of one CLI run.
type Runtime struct {
	// Obs is the observer to thread through parallel.Options (and hence
	// core.Config.Parallel / experiments.Options). Nil-safe everywhere,
	// so callers pass it unconditionally.
	Obs *obs.Observer
	// Ledger accumulates the run's privacy ledger; each record is also
	// interleaved into the trace stream when tracing is on.
	Ledger *obs.Ledger
	// Addr is the bound metrics address ("" when no endpoint is up).
	Addr string

	tracer    *obs.Tracer
	traceFile *os.File
	tracePath string
	stopHTTP  func()
}

// Start opens the trace file, builds the Observer, and starts the HTTP
// endpoint when requested. The observer always uses a LogicalClock:
// durations count instrumentation ticks, not wall time, so a seeded run
// writes the same trace bytes every time and golden outputs survive with
// tracing enabled (see the obs package's determinism contract). Wall-time
// profiles belong to -pprof, which samples real time independently.
func Start(f Flags) (*Runtime, error) {
	if f.Pprof && f.MetricsAddr == "" {
		return nil, fmt.Errorf("obsglue: -pprof requires -metrics-addr")
	}
	rt := &Runtime{}
	clock := &obs.LogicalClock{}
	reg := obs.NewRegistry()
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obsglue: trace file: %w", err)
		}
		rt.traceFile = file
		rt.tracePath = f.Trace
		rt.tracer = obs.NewTracer(file, clock)
	}
	rt.Ledger = obs.NewLedger(rt.tracer)
	rt.Obs = &obs.Observer{Tracer: rt.tracer, Metrics: reg, Clock: clock}
	if f.MetricsAddr != "" {
		addr, stop, err := obs.Serve(f.MetricsAddr, reg, f.Pprof)
		if err != nil {
			_ = rt.closeTraceFile() // the listener error supersedes
			return nil, err
		}
		rt.Addr = addr
		rt.stopHTTP = stop
	}
	return rt, nil
}

// Sink returns the accountant observer that forwards every spend into
// the runtime's ledger (wire it with Accountant.SetObserver). The
// accountant invokes it under its own lock, which makes the copied Seq
// the spend's true arrival position.
func (rt *Runtime) Sink() mechanism.SpendObserver {
	l := rt.Ledger
	return func(r mechanism.SpendRecord) {
		l.Record(obs.LedgerRecord{
			Seq:         r.Seq,
			Mechanism:   r.Meta.Mechanism,
			Sensitivity: r.Meta.Sensitivity,
			Epsilon:     r.Guarantee.Epsilon,
			Delta:       r.Guarantee.Delta,
			Outcomes:    r.Meta.Outcomes,
			Duration:    r.Meta.Duration,
			Span:        r.Meta.Span,
			Trace:       r.Meta.Trace,
		})
	}
}

// CrossCheck verifies the ledger against the accountant it observed:
// the record counts must match and the canonical composed (ε, δ) must
// agree bit-for-bit (both sides sort the spend multiset into the same
// canonical order and Kahan-sum it). A mismatch means a release escaped
// the ledger — the dynamic analogue of an acctlint finding.
func (rt *Runtime) CrossCheck(acct *mechanism.Accountant) error {
	if got, want := rt.Ledger.Len(), acct.Count(); got != want {
		return fmt.Errorf("obsglue: ledger has %d record(s), accountant spent %d", got, want)
	}
	le, ld := rt.Ledger.Composed()
	g := acct.BasicComposition()
	//dplint:ignore floateq bit-exact agreement between ledger and accountant is the property under test
	if le != g.Epsilon || ld != g.Delta {
		return fmt.Errorf("obsglue: ledger composes to (%.17g, %.17g), accountant to (%.17g, %.17g)",
			le, ld, g.Epsilon, g.Delta)
	}
	return nil
}

// Close stops the HTTP endpoint, flushes and closes the trace file, and
// — when a trace was written — re-reads it and renders the TraceSummary
// to w (nil w skips the summary). Safe on a nil Runtime, so callers may
// defer it unconditionally.
func (rt *Runtime) Close(w io.Writer) error {
	if rt == nil {
		return nil
	}
	if rt.stopHTTP != nil {
		rt.stopHTTP()
		rt.stopHTTP = nil
	}
	if err := rt.tracer.Err(); err != nil {
		_ = rt.closeTraceFile() // the sticky write error supersedes
		return fmt.Errorf("obsglue: trace write: %w", err)
	}
	path := rt.tracePath
	if err := rt.closeTraceFile(); err != nil {
		return fmt.Errorf("obsglue: trace close: %w", err)
	}
	if path == "" || w == nil {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("obsglue: trace summary: %w", err)
	}
	defer f.Close() //dplint:ignore errdrop read-only reopen for summarizing; a close error cannot lose data
	s, err := obs.Summarize(f)
	if err != nil {
		return fmt.Errorf("obsglue: trace summary: %w", err)
	}
	return s.Render(w)
}

func (rt *Runtime) closeTraceFile() error {
	if rt.traceFile == nil {
		return nil
	}
	err := rt.traceFile.Close()
	rt.traceFile = nil
	return err
}
