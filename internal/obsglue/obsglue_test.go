package obsglue

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/mechanism"
	"repro/internal/obs"
)

// TestFlagsRegister checks the shared flag surface parses the canonical
// invocation.
func TestFlagsRegister(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-trace", "out.ndjson", "-metrics-addr", ":0", "-pprof"}); err != nil {
		t.Fatal(err)
	}
	if f.Trace != "out.ndjson" || f.MetricsAddr != ":0" || !f.Pprof {
		t.Fatalf("flags not bound: %+v", f)
	}
}

// TestPprofRequiresMetricsAddr pins the opt-in rule: profiling is never
// exposed without an explicitly chosen listen address.
func TestPprofRequiresMetricsAddr(t *testing.T) {
	if _, err := Start(Flags{Pprof: true}); err == nil {
		t.Fatal("Start should reject -pprof without -metrics-addr")
	}
}

// TestRuntimeEndToEnd drives the full CLI glue path: Start with a trace
// file, spend through an observed accountant, cross-check, Close, then
// re-read the NDJSON artifact and verify the ledger it carries.
func TestRuntimeEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.ndjson")
	rt, err := Start(Flags{Trace: path})
	if err != nil {
		t.Fatal(err)
	}

	var acct mechanism.Accountant
	acct.SetObserver(rt.Sink())
	acct.SpendDetail(mechanism.Guarantee{Epsilon: 0.5}, mechanism.SpendMeta{Mechanism: "laplace", Sensitivity: 2, Outcomes: 16})
	acct.SpendDetail(mechanism.Guarantee{Epsilon: 0.25, Delta: 1e-9}, mechanism.SpendMeta{Mechanism: "gaussian", Sensitivity: 0.1})
	sp := rt.Obs.Span("fit")
	sp.End()

	if err := rt.CrossCheck(&acct); err != nil {
		t.Fatalf("cross-check failed on a consistent run: %v", err)
	}

	var summary bytes.Buffer
	if err := rt.Close(&summary); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 release(s)", "laplace", "gaussian", "1 span(s)"} {
		if !strings.Contains(summary.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, summary.String())
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadLedgerNDJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("trace file carries %d ledger records, want 2", len(recs))
	}
	if recs[0].Mechanism != "laplace" || recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("ledger records mangled: %+v", recs)
	}
	eps := make([]float64, len(recs))
	del := make([]float64, len(recs))
	for i, r := range recs {
		eps[i], del[i] = r.Epsilon, r.Delta
	}
	e, d := obs.ComposeBasic(eps, del)
	g := acct.BasicComposition()
	if e != g.Epsilon || d != g.Delta {
		t.Fatalf("file ledger (%g,%g) != accountant (%g,%g)", e, d, g.Epsilon, g.Delta)
	}
}

// TestCrossCheckDetectsEscapedRelease makes sure the cross-check is not
// vacuous: a spend that bypasses the observed accountant (the dynamic
// analogue of an un-accounted release) must fail it.
func TestCrossCheckDetectsEscapedRelease(t *testing.T) {
	rt, err := Start(Flags{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rt.Close(nil); err != nil {
			t.Fatal(err)
		}
	}()
	var acct mechanism.Accountant
	acct.SetObserver(rt.Sink())
	acct.Spend(mechanism.Guarantee{Epsilon: 0.5})
	// A second accountant spends without the ledger seeing it.
	var rogue mechanism.Accountant
	rogue.Spend(mechanism.Guarantee{Epsilon: 0.5})
	rogue.Spend(mechanism.Guarantee{Epsilon: 0.5})
	if err := rt.CrossCheck(&rogue); err == nil {
		t.Fatal("cross-check should fail when counts differ")
	}
}

// TestStartServesMetrics checks the -metrics-addr path binds a real
// listener and reports the bound address.
func TestStartServesMetrics(t *testing.T) {
	rt, err := Start(Flags{MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Addr == "" {
		t.Fatal("Start did not report the bound address")
	}
	if err := rt.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunContextTimeout pins the -timeout path: the context expires on
// its own and reports DeadlineExceeded.
func TestRunContextTimeout(t *testing.T) {
	ctx, stop := RunContext(30 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", ctx.Err())
	}
}

// TestRunContextNoTimeout pins that a zero timeout means no deadline.
func TestRunContextNoTimeout(t *testing.T) {
	ctx, stop := RunContext(0)
	defer stop()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout set a deadline")
	}
	select {
	case <-ctx.Done():
		t.Fatalf("context done immediately: %v", ctx.Err())
	default:
	}
	stop()
	if ctx.Err() == nil {
		t.Fatal("stop did not cancel the context")
	}
}

// TestRunContextSIGINT pins the graceful-drain signal path: a SIGINT
// cancels the run context instead of killing the process.
func TestRunContextSIGINT(t *testing.T) {
	ctx, stop := RunContext(0)
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("SIGINT did not cancel the run context")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("want Canceled, got %v", ctx.Err())
	}
}
