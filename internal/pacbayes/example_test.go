package pacbayes_test

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/pacbayes"
)

// Example shows Lemma 3.2 numerically: the Gibbs posterior attains the
// closed-form minimum of the linearized PAC-Bayes objective.
func Example() {
	risks := []float64{0.1, 0.4, 0.7}
	logPrior := []float64{math.Log(1.0 / 3), math.Log(1.0 / 3), math.Log(1.0 / 3)}
	lambda := 5.0

	post, err := pacbayes.GibbsLogPosterior(logPrior, risks, lambda)
	if err != nil {
		panic(err)
	}
	st, err := pacbayes.StatsFor(post, logPrior, risks)
	if err != nil {
		panic(err)
	}
	opt, err := pacbayes.GibbsOptimalValue(logPrior, risks, lambda)
	if err != nil {
		panic(err)
	}
	objective := st.ExpEmpRisk + st.KL/lambda
	fmt.Printf("gibbs attains the optimum: %v\n", mathx.AlmostEqual(objective, opt, 1e-12))

	bound, err := pacbayes.CatoniBound(st.ExpEmpRisk, st.KL, lambda, 200, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("catoni bound exceeds empirical risk: %v\n", bound > st.ExpEmpRisk)
	// Output:
	// gibbs attains the optimum: true
	// catoni bound exceeds empirical risk: true
}
