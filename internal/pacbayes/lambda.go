package pacbayes

import (
	"math"
)

// LambdaSelection is the result of bound-optimal temperature selection.
type LambdaSelection struct {
	// Lambda is the selected inverse temperature.
	Lambda float64
	// Bound is the Catoni bound achieved at Lambda (with the union-bound
	// corrected confidence).
	Bound float64
	// PerLambda records the bound at every candidate, aligned with the
	// candidate grid passed in.
	PerLambda []float64
}

// SelectLambda picks the λ from the candidate grid whose Gibbs posterior
// minimizes Catoni's bound, holding the bound valid simultaneously for
// all candidates by a union bound (each candidate is evaluated at
// confidence δ/k, so the selected bound still holds w.p. ≥ 1−δ).
//
// Theorem 3.1 fixes λ before seeing the data; choosing λ from the data
// without this correction would invalidate the certificate. This is the
// standard grid-plus-union-bound remedy, and the ablation experiment A2
// quantifies what it costs.
//
// logPrior must be normalized over the same Θ as risks; risks must lie in
// [0, 1] (rescale a bounded loss first).
func SelectLambda(logPrior, risks []float64, candidates []float64, n int, delta float64) (LambdaSelection, error) {
	if len(candidates) == 0 || n <= 0 || delta <= 0 || delta >= 1 {
		return LambdaSelection{}, ErrBadParams
	}
	if len(logPrior) != len(risks) {
		return LambdaSelection{}, ErrBadParams
	}
	deltaEach := delta / float64(len(candidates))
	best := LambdaSelection{Lambda: math.NaN(), Bound: math.Inf(1), PerLambda: make([]float64, len(candidates))}
	for i, lambda := range candidates {
		if lambda <= 0 {
			return LambdaSelection{}, ErrBadParams
		}
		post, err := GibbsLogPosterior(logPrior, risks, lambda)
		if err != nil {
			return LambdaSelection{}, err
		}
		st, err := StatsFor(post, logPrior, risks)
		if err != nil {
			return LambdaSelection{}, err
		}
		b, err := CatoniBound(st.ExpEmpRisk, st.KL, lambda, n, deltaEach)
		if err != nil {
			return LambdaSelection{}, err
		}
		best.PerLambda[i] = b
		if b < best.Bound {
			best.Bound = b
			best.Lambda = lambda
		}
	}
	return best, nil
}

// SqrtNLambda returns the common heuristic λ = c·√n used when no
// selection is performed.
func SqrtNLambda(n int, c float64) float64 {
	if n <= 0 || c <= 0 {
		panic("pacbayes: SqrtNLambda requires n > 0 and c > 0")
	}
	return c * math.Sqrt(float64(n))
}

// BoundComparison evaluates the three classical PAC-Bayes bounds for the
// same posterior statistics, for side-by-side reporting.
type BoundComparison struct {
	Catoni, McAllester, Seeger float64
}

// CompareBounds computes Catoni (at the given λ), McAllester, and Seeger
// bounds for one (risk, KL) pair.
func CompareBounds(expEmpRisk, kl, lambda float64, n int, delta float64) (BoundComparison, error) {
	c, err := CatoniBound(expEmpRisk, kl, lambda, n, delta)
	if err != nil {
		return BoundComparison{}, err
	}
	m, err := McAllesterBound(expEmpRisk, kl, n, delta)
	if err != nil {
		return BoundComparison{}, err
	}
	s, err := SeegerBound(expEmpRisk, kl, n, delta)
	if err != nil {
		return BoundComparison{}, err
	}
	return BoundComparison{Catoni: c, McAllester: m, Seeger: s}, nil
}
