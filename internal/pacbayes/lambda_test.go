package pacbayes

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestSelectLambda(t *testing.T) {
	g := rng.New(1)
	k := 50
	logPrior := uniformLogPrior(k)
	risks := make([]float64, k)
	for i := range risks {
		risks[i] = g.Float64()
	}
	n := 300
	candidates := []float64{1, 5, 25, 125, 625}
	sel, err := SelectLambda(logPrior, risks, candidates, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sel.Lambda) {
		t.Fatal("no lambda selected")
	}
	if len(sel.PerLambda) != len(candidates) {
		t.Fatal("PerLambda length")
	}
	// The selected bound is the minimum of the per-candidate bounds.
	minB := sel.PerLambda[mathx.ArgMin(sel.PerLambda)]
	if !mathx.AlmostEqual(sel.Bound, minB, 1e-12) {
		t.Errorf("Bound %v != min PerLambda %v", sel.Bound, minB)
	}
	// Union bound makes each candidate slightly looser than evaluating it
	// alone at full delta.
	post, _ := GibbsLogPosterior(logPrior, risks, sel.Lambda)
	st, _ := StatsFor(post, logPrior, risks)
	alone, err := CatoniBound(st.ExpEmpRisk, st.KL, sel.Lambda, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Bound < alone-1e-12 {
		t.Errorf("union-bound corrected bound %v must be >= uncorrected %v", sel.Bound, alone)
	}
}

func TestSelectLambdaBeatsHeuristicOnItsGrid(t *testing.T) {
	// If the heuristic λ is in the candidate grid, the selection can only
	// do better or equal (both at union-bound-corrected confidence).
	g := rng.New(3)
	k := 30
	logPrior := uniformLogPrior(k)
	risks := make([]float64, k)
	for i := range risks {
		risks[i] = g.Float64() * 0.6
	}
	n := 200
	heur := SqrtNLambda(n, 2)
	candidates := []float64{heur / 4, heur, heur * 4}
	sel, err := SelectLambda(logPrior, risks, candidates, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Bound > sel.PerLambda[1]+1e-12 {
		t.Errorf("selection %v worse than heuristic-in-grid %v", sel.Bound, sel.PerLambda[1])
	}
}

func TestSelectLambdaValidation(t *testing.T) {
	lp := uniformLogPrior(2)
	risks := []float64{0.1, 0.9}
	if _, err := SelectLambda(lp, risks, nil, 10, 0.05); err != ErrBadParams {
		t.Error("empty grid")
	}
	if _, err := SelectLambda(lp, risks, []float64{1}, 0, 0.05); err != ErrBadParams {
		t.Error("n")
	}
	if _, err := SelectLambda(lp, risks, []float64{1}, 10, 0); err != ErrBadParams {
		t.Error("delta")
	}
	if _, err := SelectLambda(lp, risks, []float64{-1}, 10, 0.05); err != ErrBadParams {
		t.Error("negative candidate")
	}
	if _, err := SelectLambda(lp, risks[:1], []float64{1}, 10, 0.05); err != ErrBadParams {
		t.Error("length mismatch")
	}
}

func TestSqrtNLambda(t *testing.T) {
	if got := SqrtNLambda(100, 2); !mathx.AlmostEqual(got, 20, 1e-12) {
		t.Errorf("SqrtNLambda = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid args should panic")
		}
	}()
	SqrtNLambda(0, 1)
}

func TestCompareBounds(t *testing.T) {
	cb, err := CompareBounds(0.15, 1.2, 30, 400, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Seeger dominates McAllester; all exceed the empirical risk.
	if cb.Seeger > cb.McAllester+1e-9 {
		t.Errorf("Seeger %v above McAllester %v", cb.Seeger, cb.McAllester)
	}
	for _, b := range []float64{cb.Catoni, cb.McAllester, cb.Seeger} {
		if b < 0.15 {
			t.Errorf("bound %v below empirical risk", b)
		}
	}
	if _, err := CompareBounds(0.15, -1, 30, 400, 0.05); err == nil {
		t.Error("invalid KL must error")
	}
}

func TestBoundErrorPropagation(t *testing.T) {
	// CompareBounds propagates failures from each constituent bound.
	if _, err := CompareBounds(0.1, 1, 30, 400, 1.5); err == nil {
		t.Error("bad delta must error")
	}
	if _, err := CompareBounds(math.NaN(), 1, 30, 400, 0.05); err == nil {
		t.Error("NaN risk must error")
	}
	// CatoniExpectationBound validation.
	if _, err := CatoniExpectationBound(0.1, -1, 10, 100); err != ErrBadParams {
		t.Error("negative KL")
	}
	if _, err := CatoniExpectationBound(0.1, 1, 10, 0); err != ErrBadParams {
		t.Error("zero n")
	}
	// Clamping at zero for extremely favorable stats.
	b, err := CatoniExpectationBound(0, 0, 1e-6, 10)
	if err != nil || b < 0 {
		t.Errorf("clamp: %v, %v", b, err)
	}
	// LinearizedBound delta=1 drops the confidence term.
	l1, err := LinearizedBound(0.2, 1, 5, 1)
	if err != nil || !mathx.AlmostEqual(l1, 0.2+1.0/5, 1e-12) {
		t.Errorf("linearized at delta=1: %v, %v", l1, err)
	}
	if _, err := LinearizedBound(0.2, 1, 5, 1.5); err != ErrBadParams {
		t.Error("delta > 1")
	}
	if _, err := McAllesterBound(0.2, -1, 100, 0.05); err != ErrBadParams {
		t.Error("mcallester negative KL")
	}
	if _, err := SeegerBound(0.2, -1, 100, 0.05); err != ErrBadParams {
		t.Error("seeger negative KL")
	}
	// SeegerBound clamps empirical risk above 1.
	p, err := SeegerBound(1.3, 0.1, 100, 0.05)
	if err != nil || p != 1 {
		t.Errorf("seeger clamp: %v, %v", p, err)
	}
}
