package pacbayes

// Table-driven monotonicity tests for the Theorem 3.1 (Catoni) bound
// and the Seeger kl-inversion bound: the certified risk must be
// non-decreasing in the empirical risk and in KL(ρ‖π), must tighten as
// the confidence is relaxed (δ→1), and must tighten with sample size at
// a fixed inverse-temperature rate β = λ/n. These orderings are what
// make the certificate actionable: a learner that lowers its empirical
// risk or its KL can never be punished with a larger bound.

import (
	"math"
	"testing"
)

// catoniAt evaluates the bound, failing the test on error.
func catoniAt(t *testing.T, risk, kl, lambda float64, n int, delta float64) float64 {
	t.Helper()
	b, err := CatoniBound(risk, kl, lambda, n, delta)
	if err != nil {
		t.Fatalf("CatoniBound(%g,%g,%g,%d,%g): %v", risk, kl, lambda, n, delta, err)
	}
	if math.IsNaN(b) || b < 0 {
		t.Fatalf("CatoniBound(%g,%g,%g,%d,%g) = %g", risk, kl, lambda, n, delta, b)
	}
	return b
}

// base parameter grid shared by the monotonicity sweeps.
var catoniGrid = []struct {
	name   string
	risk   float64
	kl     float64
	lambda float64
	n      int
	delta  float64
}{
	{"small-n", 0.3, 0.5, 20, 50, 0.05},
	{"mid-n", 0.25, 1.0, 100, 500, 0.05},
	{"large-n", 0.1, 2.0, 400, 4000, 0.01},
	{"low-risk", 0.02, 0.2, 150, 1000, 0.1},
	{"high-kl", 0.4, 8.0, 60, 300, 0.05},
}

// TestCatoniMonotoneInEmpiricalRisk: at fixed (KL, λ, n, δ) the bound
// is non-decreasing in the posterior's expected empirical risk.
func TestCatoniMonotoneInEmpiricalRisk(t *testing.T) {
	risks := []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1}
	for _, tc := range catoniGrid {
		t.Run(tc.name, func(t *testing.T) {
			prev := math.Inf(-1)
			for _, r := range risks {
				b := catoniAt(t, r, tc.kl, tc.lambda, tc.n, tc.delta)
				if b < prev-1e-12 {
					t.Errorf("bound decreased in risk: risk=%g gives %g after %g", r, b, prev)
				}
				prev = b
			}
		})
	}
}

// TestCatoniMonotoneInKL: at fixed (risk, λ, n, δ) the bound is
// non-decreasing in KL(ρ‖π) — straying from the prior costs certificate
// tightness, the PAC-Bayes regularization the Gibbs posterior
// optimally trades off (Lemma 3.2).
func TestCatoniMonotoneInKL(t *testing.T) {
	kls := []float64{0, 0.1, 0.5, 1, 2, 4, 8, 16}
	for _, tc := range catoniGrid {
		t.Run(tc.name, func(t *testing.T) {
			prev := math.Inf(-1)
			for _, kl := range kls {
				b := catoniAt(t, tc.risk, kl, tc.lambda, tc.n, tc.delta)
				if b < prev-1e-12 {
					t.Errorf("bound decreased in KL: kl=%g gives %g after %g", kl, b, prev)
				}
				prev = b
			}
		})
	}
}

// TestCatoniTightensAsDeltaGrows: relaxing the confidence (δ→1) can
// only shrink the ln(1/δ) penalty, so the bound is non-increasing in δ.
func TestCatoniTightensAsDeltaGrows(t *testing.T) {
	deltas := []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9, 0.999}
	for _, tc := range catoniGrid {
		t.Run(tc.name, func(t *testing.T) {
			prev := math.Inf(1)
			for _, delta := range deltas {
				b := catoniAt(t, tc.risk, tc.kl, tc.lambda, tc.n, delta)
				if b > prev+1e-12 {
					t.Errorf("bound increased in delta: delta=%g gives %g after %g", delta, b, prev)
				}
				prev = b
			}
		})
	}
}

// TestCatoniTightensWithSampleSize: at a fixed inverse-temperature
// rate β = λ/n (the calibration Theorem 4.1 induces: λ grows linearly
// in n at fixed ε), more data shrinks the (KL + ln(1/δ))/n penalty and
// the bound is non-increasing in n.
func TestCatoniTightensWithSampleSize(t *testing.T) {
	ns := []int{50, 100, 400, 1600, 6400, 25600}
	betas := []float64{0.5, 1, 2}
	for _, tc := range catoniGrid {
		for _, beta := range betas {
			prev := math.Inf(1)
			for _, n := range ns {
				b := catoniAt(t, tc.risk, tc.kl, beta*float64(n), n, tc.delta)
				if b > prev+1e-12 {
					t.Errorf("%s beta=%g: bound increased in n: n=%d gives %g after %g",
						tc.name, beta, n, b, prev)
				}
				prev = b
			}
		}
	}
}

// TestCatoniDominatesEmpiricalRiskAtCalibratedLambda: the bound is
// never below the empirical risk it certifies (it upper-bounds the true
// risk, whose plug-in estimate is the empirical risk) across the grid.
func TestCatoniDominatesEmpiricalRiskAtCalibratedLambda(t *testing.T) {
	for _, tc := range catoniGrid {
		b := catoniAt(t, tc.risk, tc.kl, tc.lambda, tc.n, tc.delta)
		if b < tc.risk {
			t.Errorf("%s: bound %g below empirical risk %g", tc.name, b, tc.risk)
		}
	}
}

// TestSeegerMonotoneInKLAndN: the kl-inversion bound obeys the same
// orderings — non-decreasing in KL, non-increasing in n.
func TestSeegerMonotoneInKLAndN(t *testing.T) {
	kls := []float64{0, 0.25, 1, 4, 12}
	prev := math.Inf(-1)
	for _, kl := range kls {
		b, err := SeegerBound(0.2, kl, 800, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if b < prev-1e-12 {
			t.Errorf("Seeger bound decreased in KL: kl=%g gives %g after %g", kl, b, prev)
		}
		prev = b
	}
	prev = math.Inf(1)
	for _, n := range []int{50, 200, 800, 3200, 12800} {
		b, err := SeegerBound(0.2, 1.5, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if b > prev+1e-12 {
			t.Errorf("Seeger bound increased in n: n=%d gives %g after %g", n, b, prev)
		}
		prev = b
	}
}
