// Package pacbayes implements the PAC-Bayesian generalization bounds of
// Section 3 of the paper: Catoni's bound (Theorem 3.1) in both its exact
// Φ-inverse form and its linearized form, plus the McAllester and
// Seeger/Langford (kl-inversion) bounds for comparison, and the
// Donsker–Varadhan machinery behind Lemma 3.2 (the Gibbs posterior as the
// bound minimizer).
//
// All bounds are for losses in [0, 1]; callers with [0, M] losses rescale
// (divide risks by M, multiply the returned bound by M).
//
// Notation: n is the sample size, λ > 0 the inverse temperature (the
// paper's exponential-mechanism parameter), π the prior on Θ, ρ (or π̂)
// a posterior, R̂ the empirical risk, R the true risk, δ the confidence
// parameter, KL(ρ‖π) the Kullback–Leibler divergence.
package pacbayes

import (
	"errors"
	"math"

	"repro/internal/infotheory"
	"repro/internal/mathx"
)

// ErrBadParams is returned for invalid bound parameters.
var ErrBadParams = errors.New("pacbayes: invalid parameters")

// CatoniBound returns the right-hand side of Theorem 3.1 (Catoni's
// PAC-Bayes bound): with probability ≥ 1−δ over samples of size n,
//
//	E_ρ R  ≤  [1 − exp(−(λ/n)·E_ρ R̂ − (KL(ρ‖π) + ln(1/δ))/n)] / [1 − exp(−λ/n)]
//
// given the posterior's expected empirical risk, its KL divergence to the
// prior, λ, n, and δ. The bound may exceed 1 (vacuous) for small n or
// large KL; it is clamped below at 0.
func CatoniBound(expEmpRisk, kl, lambda float64, n int, delta float64) (float64, error) {
	if err := checkParams(expEmpRisk, kl, lambda, n); err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadParams
	}
	nf := float64(n)
	exponent := -(lambda/nf)*expEmpRisk - (kl+math.Log(1/delta))/nf
	numer := -math.Expm1(exponent) // 1 − e^{exponent}
	denom := -math.Expm1(-lambda / nf)
	b := numer / denom
	if b < 0 {
		b = 0
	}
	return b, nil
}

// CatoniExpectationBound returns the in-expectation version (Equation 1
// of the paper, without the confidence term):
//
//	E_Ẑ E_ρ R  ≤  [1 − exp(−(λ/n)·E_Ẑ E_ρ R̂ − E_Ẑ KL(ρ‖π)/n)] / [1 − exp(−λ/n)]
func CatoniExpectationBound(expEmpRisk, expKL, lambda float64, n int) (float64, error) {
	if err := checkParams(expEmpRisk, expKL, lambda, n); err != nil {
		return 0, err
	}
	nf := float64(n)
	exponent := -(lambda/nf)*expEmpRisk - expKL/nf
	b := -math.Expm1(exponent) / -math.Expm1(-lambda/nf)
	if b < 0 {
		b = 0
	}
	return b, nil
}

// LinearizedBound returns the linearized Catoni objective
//
//	E_ρ R̂ + (KL(ρ‖π) + ln(1/δ))/λ
//
// — the quantity the Gibbs posterior minimizes exactly (Lemma 3.2).
// Pass delta = 1 to drop the confidence term (ln(1/1) = 0), recovering
// the regularized objective of Section 4.
func LinearizedBound(expEmpRisk, kl, lambda, delta float64) (float64, error) {
	if lambda <= 0 || kl < 0 || math.IsNaN(expEmpRisk) {
		return 0, ErrBadParams
	}
	if delta <= 0 || delta > 1 {
		return 0, ErrBadParams
	}
	return expEmpRisk + (kl+math.Log(1/delta))/lambda, nil
}

// McAllesterBound returns McAllester's PAC-Bayes bound:
//
//	E_ρ R  ≤  E_ρ R̂ + sqrt( (KL(ρ‖π) + ln(2√n/δ)) / (2n) )
func McAllesterBound(expEmpRisk, kl float64, n int, delta float64) (float64, error) {
	if err := checkParams(expEmpRisk, kl, 1, n); err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadParams
	}
	nf := float64(n)
	return expEmpRisk + math.Sqrt((kl+math.Log(2*math.Sqrt(nf)/delta))/(2*nf)), nil
}

// BinaryKL returns the binary relative entropy
// kl(q‖p) = q·ln(q/p) + (1−q)·ln((1−q)/(1−p)) for q, p ∈ [0, 1].
// It is +Inf when p ∈ {0,1} disagrees with q.
func BinaryKL(q, p float64) float64 {
	if q < 0 || q > 1 || p < 0 || p > 1 {
		return math.NaN()
	}
	var d float64
	switch {
	case q == 0: //dplint:ignore floateq exact endpoint of binary KL: the 0*log(0) convention applies at bitwise zero
		d = -math.Log(1 - p)
	case q == 1: //dplint:ignore floateq exact endpoint of binary KL: the 0*log(0) convention applies at bitwise one
		d = -math.Log(p)
	default:
		d = q*math.Log(q/p) + (1-q)*math.Log((1-q)/(1-p))
	}
	if d < 0 { // rounding
		d = 0
	}
	return d
}

// SeegerBound returns the Seeger/Langford kl-inversion bound: the largest
// p ∈ [q, 1] with kl(q‖p) ≤ (KL(ρ‖π) + ln(2√n/δ))/n, computed by
// bisection. It is the tightest of the classical PAC-Bayes bounds.
func SeegerBound(expEmpRisk, kl float64, n int, delta float64) (float64, error) {
	if err := checkParams(expEmpRisk, kl, 1, n); err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadParams
	}
	if expEmpRisk > 1 {
		expEmpRisk = 1
	}
	budget := (kl + math.Log(2*math.Sqrt(float64(n))/delta)) / float64(n)
	if BinaryKL(expEmpRisk, 1) <= budget {
		return 1, nil
	}
	// kl(q‖p) is increasing in p on [q, 1]; find the crossing.
	f := func(p float64) float64 { return BinaryKL(expEmpRisk, p) - budget }
	root, err := mathx.Bisect(f, expEmpRisk, 1, 1e-12, 200)
	if err != nil {
		return 0, err
	}
	return root, nil
}

func checkParams(risk, kl, lambda float64, n int) error {
	if n <= 0 || lambda <= 0 || kl < 0 || math.IsNaN(risk) || math.IsNaN(kl) {
		return ErrBadParams
	}
	return nil
}

// PosteriorStats bundles the quantities a PAC-Bayes bound needs for a
// discrete posterior over a finite Θ.
type PosteriorStats struct {
	// ExpEmpRisk is E_{θ~ρ} R̂(θ).
	ExpEmpRisk float64
	// KL is KL(ρ‖π) in nats.
	KL float64
}

// StatsFor computes PosteriorStats for a posterior and prior given as
// normalized log-probability vectors over the same finite Θ, and the
// per-θ empirical risks.
func StatsFor(logPosterior, logPrior, risks []float64) (PosteriorStats, error) {
	if len(logPosterior) != len(logPrior) || len(logPosterior) != len(risks) {
		return PosteriorStats{}, ErrBadParams
	}
	kl, err := infotheory.KLLogSpace(logPosterior, logPrior)
	if err != nil {
		return PosteriorStats{}, err
	}
	var exp mathx.KahanSum
	for i, lp := range logPosterior {
		if math.IsInf(lp, -1) {
			continue
		}
		exp.Add(math.Exp(lp) * risks[i])
	}
	return PosteriorStats{ExpEmpRisk: exp.Sum(), KL: kl}, nil
}

// GibbsLogPosterior returns the Gibbs posterior of Lemma 3.2 over a
// finite Θ in log space:
//
//	log π̂_λ(θ) = log π(θ) − λ·R̂(θ) − log Z
//
// where Z = E_π exp(−λR̂). logPrior need not be normalized.
func GibbsLogPosterior(logPrior, risks []float64, lambda float64) ([]float64, error) {
	if len(logPrior) != len(risks) || lambda <= 0 {
		return nil, ErrBadParams
	}
	logw := make([]float64, len(logPrior))
	for i := range logw {
		logw[i] = logPrior[i] - lambda*risks[i]
	}
	normalized, logZ := mathx.LogNormalize(logw)
	if math.IsInf(logZ, -1) {
		return nil, ErrBadParams
	}
	return normalized, nil
}

// GibbsOptimalValue returns the minimum of the Donsker–Varadhan objective
// E_ρ R̂ + KL(ρ‖π)/λ over all posteriors ρ, which Lemma 3.2 says is
// attained by the Gibbs posterior:
//
//	min = −(1/λ)·ln E_π exp(−λ·R̂)
//
// logPrior must be normalized.
func GibbsOptimalValue(logPrior, risks []float64, lambda float64) (float64, error) {
	if len(logPrior) != len(risks) || lambda <= 0 {
		return 0, ErrBadParams
	}
	logw := make([]float64, len(logPrior))
	for i := range logw {
		logw[i] = logPrior[i] - lambda*risks[i]
	}
	logZ := mathx.LogSumExp(logw)
	if math.IsInf(logZ, -1) {
		return 0, ErrBadParams
	}
	return -logZ / lambda, nil
}

// MinimizePosterior numerically minimizes the linearized objective
// E_ρ R̂ + KL(ρ‖π)/λ over the probability simplex by exponentiated
// gradient (mirror) descent, returning the final posterior in log space
// and the objective value. It exists to cross-check Lemma 3.2: the result
// must coincide with GibbsLogPosterior up to optimizer tolerance.
func MinimizePosterior(logPrior, risks []float64, lambda float64, iters int) ([]float64, float64, error) {
	if len(logPrior) != len(risks) || lambda <= 0 || iters <= 0 {
		return nil, 0, ErrBadParams
	}
	k := len(risks)
	// Start from the prior.
	logRho, _ := mathx.LogNormalize(append([]float64(nil), logPrior...))
	objective := func(lr []float64) float64 {
		st, err := StatsFor(lr, logPrior, risks)
		if err != nil {
			return math.Inf(1)
		}
		return st.ExpEmpRisk + st.KL/lambda
	}
	step := 1.0
	cur := objective(logRho)
	grad := make([]float64, k)
	for it := 0; it < iters; it++ {
		// ∂/∂ρᵢ [Σρr + (Σρ(lnρ−lnπ))/λ] = rᵢ + (ln ρᵢ − ln πᵢ + 1)/λ.
		for i := range grad {
			grad[i] = risks[i] + (logRho[i]-logPrior[i]+1)/lambda
		}
		// Exponentiated gradient step with backtracking.
		for {
			next := make([]float64, k)
			for i := range next {
				next[i] = logRho[i] - step*grad[i]
			}
			nextNorm, _ := mathx.LogNormalize(next)
			if v := objective(nextNorm); v <= cur {
				logRho, cur = nextNorm, v
				break
			}
			step /= 2
			if step < 1e-12 {
				return logRho, cur, nil
			}
		}
	}
	return logRho, cur, nil
}
