package pacbayes

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func uniformLogPrior(k int) []float64 {
	out := make([]float64, k)
	lp := -math.Log(float64(k))
	for i := range out {
		out[i] = lp
	}
	return out
}

func TestCatoniBoundBasics(t *testing.T) {
	// Zero risk, zero KL: bound = (1 − e^{−ln(1/δ)/n}) / (1 − e^{−λ/n}).
	b, err := CatoniBound(0, 0, 10, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Expm1(-math.Log(20)/100) / -math.Expm1(-0.1)
	if !mathx.AlmostEqual(b, want, 1e-12) {
		t.Errorf("CatoniBound = %v, want %v", b, want)
	}
	// Bound decreases with n and increases with KL.
	b1, _ := CatoniBound(0.2, 1, 50, 100, 0.05)
	b2, _ := CatoniBound(0.2, 1, 50, 1000, 0.05)
	if b2 >= b1 {
		t.Errorf("bound must shrink with n: %v vs %v", b1, b2)
	}
	b3, _ := CatoniBound(0.2, 5, 50, 100, 0.05)
	if b3 <= b1 {
		t.Errorf("bound must grow with KL: %v vs %v", b1, b3)
	}
}

func TestCatoniBoundApproachesLinearized(t *testing.T) {
	// For λ ≪ n, Catoni ≈ linearized bound.
	risk, kl, lambda, delta := 0.3, 2.0, 5.0, 0.05
	n := 100000
	catoni, err := CatoniBound(risk, kl, lambda, n, delta)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := LinearizedBound(risk, kl, lambda, delta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(catoni-lin)/lin > 0.01 {
		t.Errorf("catoni %v vs linearized %v", catoni, lin)
	}
	// Catoni never exceeds the linearized bound (Φ⁻¹ is concave below identity).
	for _, nn := range []int{50, 200, 1000} {
		c, _ := CatoniBound(risk, kl, lambda, nn, delta)
		if c > lin+1e-12 {
			t.Errorf("catoni %v exceeds linearized %v at n=%d", c, lin, nn)
		}
	}
}

func TestCatoniExpectationBound(t *testing.T) {
	b, err := CatoniExpectationBound(0.25, 1.5, 20, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Must be below the high-confidence bound with the same stats.
	bc, _ := CatoniBound(0.25, 1.5, 20, 200, 0.05)
	if b >= bc {
		t.Errorf("expectation bound %v should be below confidence bound %v", b, bc)
	}
}

func TestBoundValidation(t *testing.T) {
	if _, err := CatoniBound(0.1, -1, 10, 100, 0.05); err != ErrBadParams {
		t.Error("negative KL")
	}
	if _, err := CatoniBound(0.1, 1, 0, 100, 0.05); err != ErrBadParams {
		t.Error("zero lambda")
	}
	if _, err := CatoniBound(0.1, 1, 10, 0, 0.05); err != ErrBadParams {
		t.Error("zero n")
	}
	if _, err := CatoniBound(0.1, 1, 10, 100, 0); err != ErrBadParams {
		t.Error("zero delta")
	}
	if _, err := LinearizedBound(0.1, 1, 0, 0.05); err != ErrBadParams {
		t.Error("linearized zero lambda")
	}
	if _, err := McAllesterBound(0.1, 1, 100, 1.5); err != ErrBadParams {
		t.Error("mcallester delta")
	}
	if _, err := SeegerBound(0.1, 1, 100, 0); err != ErrBadParams {
		t.Error("seeger delta")
	}
}

func TestMcAllesterBound(t *testing.T) {
	b, err := McAllesterBound(0.1, 2, 400, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 + math.Sqrt((2+math.Log(2*20/0.05))/800)
	if !mathx.AlmostEqual(b, want, 1e-12) {
		t.Errorf("McAllester = %v, want %v", b, want)
	}
}

func TestBinaryKL(t *testing.T) {
	if BinaryKL(0.5, 0.5) != 0 {
		t.Error("kl(q,q) = 0")
	}
	want := 0.3*math.Log(3) + 0.7*math.Log(0.7/0.9)
	if got := BinaryKL(0.3, 0.1); !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("BinaryKL = %v, want %v", got, want)
	}
	if !math.IsInf(BinaryKL(0.5, 0), 1) || !math.IsInf(BinaryKL(0.5, 1), 1) {
		t.Error("degenerate p must be +Inf")
	}
	if BinaryKL(0, 0.5) != math.Ln2 {
		t.Errorf("BinaryKL(0, .5) = %v", BinaryKL(0, 0.5))
	}
	if !math.IsNaN(BinaryKL(-0.1, 0.5)) {
		t.Error("out of range must be NaN")
	}
}

func TestSeegerBoundInvertsKL(t *testing.T) {
	q, kl, n, delta := 0.15, 1.2, 500, 0.05
	p, err := SeegerBound(q, kl, n, delta)
	if err != nil {
		t.Fatal(err)
	}
	budget := (kl + math.Log(2*math.Sqrt(float64(n))/delta)) / float64(n)
	if !mathx.AlmostEqual(BinaryKL(q, p), budget, 1e-6) {
		t.Errorf("kl(q, p) = %v, want %v", BinaryKL(q, p), budget)
	}
	if p <= q {
		t.Errorf("Seeger bound %v must exceed empirical risk %v", p, q)
	}
}

func TestSeegerTighterThanMcAllester(t *testing.T) {
	// The kl-inversion bound dominates McAllester via Pinsker.
	for _, q := range []float64{0.05, 0.2, 0.4} {
		s, err1 := SeegerBound(q, 1.5, 300, 0.05)
		m, err2 := McAllesterBound(q, 1.5, 300, 0.05)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if s > m+1e-9 {
			t.Errorf("Seeger %v looser than McAllester %v at q=%v", s, m, q)
		}
	}
}

func TestSeegerSaturates(t *testing.T) {
	// Huge KL budget: bound saturates at 1.
	p, err := SeegerBound(0.5, 1e6, 10, 0.05)
	if err != nil || p < 1-1e-9 {
		t.Errorf("saturated Seeger = %v, %v", p, err)
	}
	// With empirical risk exactly 1 the bound is 1 by the early return.
	p1, err := SeegerBound(1, 0.1, 10, 0.05)
	if err != nil || p1 != 1 {
		t.Errorf("Seeger at q=1 = %v, %v", p1, err)
	}
}

func TestStatsFor(t *testing.T) {
	logPrior := uniformLogPrior(4)
	risks := []float64{0, 0.5, 1, 0.25}
	// Posterior = prior: KL = 0, exp risk = mean risk.
	st, err := StatsFor(logPrior, logPrior, risks)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(st.KL, 0, 1e-12) {
		t.Errorf("KL = %v", st.KL)
	}
	if !mathx.AlmostEqual(st.ExpEmpRisk, 0.4375, 1e-12) {
		t.Errorf("ExpEmpRisk = %v", st.ExpEmpRisk)
	}
	// Point mass on index 0: KL = ln 4, risk = 0.
	point := []float64{0, math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	st2, err := StatsFor(point, logPrior, risks)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(st2.KL, math.Log(4), 1e-12) || st2.ExpEmpRisk != 0 {
		t.Errorf("point stats = %+v", st2)
	}
	if _, err := StatsFor(point, logPrior, risks[:2]); err != ErrBadParams {
		t.Error("length mismatch")
	}
}

func TestGibbsLogPosteriorClosedForm(t *testing.T) {
	logPrior := uniformLogPrior(3)
	risks := []float64{0.1, 0.5, 0.9}
	lambda := 2.0
	post, err := GibbsLogPosterior(logPrior, risks, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(mathx.LogSumExp(post), 0, 1e-12) {
		t.Error("posterior must normalize")
	}
	// Ratios: p(i)/p(j) = exp(−λ(rᵢ−rⱼ)).
	if !mathx.AlmostEqual(post[0]-post[1], lambda*0.4, 1e-12) {
		t.Errorf("ratio = %v, want %v", post[0]-post[1], lambda*0.4)
	}
	// Brute-force normalization check.
	var z float64
	for i := range risks {
		z += math.Exp(logPrior[i]) * math.Exp(-lambda*risks[i])
	}
	for i := range risks {
		want := math.Exp(logPrior[i]) * math.Exp(-lambda*risks[i]) / z
		if !mathx.AlmostEqual(math.Exp(post[i]), want, 1e-12) {
			t.Errorf("posterior[%d] = %v, want %v", i, math.Exp(post[i]), want)
		}
	}
}

func TestLemma32GibbsMinimizesLinearizedBound(t *testing.T) {
	// The Gibbs posterior must achieve GibbsOptimalValue and beat every
	// competitor posterior on E_ρ R̂ + KL/λ. This is Lemma 3.2 verified
	// numerically.
	g := rng.New(42)
	k := 25
	logPrior := uniformLogPrior(k)
	risks := make([]float64, k)
	for i := range risks {
		risks[i] = g.Float64()
	}
	lambda := 7.0
	gibbs, err := GibbsLogPosterior(logPrior, risks, lambda)
	if err != nil {
		t.Fatal(err)
	}
	stG, err := StatsFor(gibbs, logPrior, risks)
	if err != nil {
		t.Fatal(err)
	}
	valG := stG.ExpEmpRisk + stG.KL/lambda
	opt, err := GibbsOptimalValue(logPrior, risks, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(valG, opt, 1e-10) {
		t.Errorf("Gibbs objective %v != closed-form optimum %v", valG, opt)
	}
	// 500 random competitor posteriors must all be no better.
	for trial := 0; trial < 500; trial++ {
		logw := make([]float64, k)
		for i := range logw {
			logw[i] = g.Normal(0, 2)
		}
		comp, _ := mathx.LogNormalize(logw)
		st, err := StatsFor(comp, logPrior, risks)
		if err != nil {
			t.Fatal(err)
		}
		if v := st.ExpEmpRisk + st.KL/lambda; v < valG-1e-10 {
			t.Fatalf("competitor beat Gibbs: %v < %v", v, valG)
		}
	}
}

func TestMinimizePosteriorConvergesToGibbs(t *testing.T) {
	g := rng.New(7)
	k := 12
	logPrior := uniformLogPrior(k)
	risks := make([]float64, k)
	for i := range risks {
		risks[i] = g.Float64()
	}
	lambda := 4.0
	gibbs, _ := GibbsLogPosterior(logPrior, risks, lambda)
	opt, _ := GibbsOptimalValue(logPrior, risks, lambda)
	numPost, val, err := MinimizePosterior(logPrior, risks, lambda, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-opt) > 1e-6 {
		t.Errorf("numeric optimum %v vs closed form %v", val, opt)
	}
	for i := range gibbs {
		if math.Abs(math.Exp(numPost[i])-math.Exp(gibbs[i])) > 1e-3 {
			t.Errorf("posterior[%d]: numeric %v vs gibbs %v", i, math.Exp(numPost[i]), math.Exp(gibbs[i]))
		}
	}
}

func TestGibbsMinimizesFullCatoniBound(t *testing.T) {
	// Since Φ⁻¹ is monotone, the Gibbs posterior also minimizes the full
	// Catoni bound at the same λ.
	g := rng.New(11)
	k := 15
	n := 200
	delta := 0.05
	logPrior := uniformLogPrior(k)
	risks := make([]float64, k)
	for i := range risks {
		risks[i] = g.Float64()
	}
	lambda := 10.0
	gibbs, _ := GibbsLogPosterior(logPrior, risks, lambda)
	stG, _ := StatsFor(gibbs, logPrior, risks)
	bG, err := CatoniBound(stG.ExpEmpRisk, stG.KL, lambda, n, delta)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		logw := make([]float64, k)
		for i := range logw {
			logw[i] = g.Normal(0, 1.5)
		}
		comp, _ := mathx.LogNormalize(logw)
		st, _ := StatsFor(comp, logPrior, risks)
		b, err := CatoniBound(st.ExpEmpRisk, st.KL, lambda, n, delta)
		if err != nil {
			t.Fatal(err)
		}
		if b < bG-1e-10 {
			t.Fatalf("competitor Catoni bound %v below Gibbs %v", b, bG)
		}
	}
}

func TestGibbsPosteriorShiftInvariance(t *testing.T) {
	// Adding a constant to all risks must not change the Gibbs posterior.
	f := func(a, b, c float64, shiftRaw float64) bool {
		risks := []float64{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1)), math.Abs(math.Mod(c, 1))}
		shift := math.Mod(shiftRaw, 10)
		logPrior := uniformLogPrior(3)
		p1, err1 := GibbsLogPosterior(logPrior, risks, 3)
		shifted := []float64{risks[0] + shift, risks[1] + shift, risks[2] + shift}
		p2, err2 := GibbsLogPosterior(logPrior, shifted, 3)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range p1 {
			if !mathx.AlmostEqual(p1[i], p2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGibbsLimits(t *testing.T) {
	logPrior := uniformLogPrior(3)
	risks := []float64{0.2, 0.1, 0.9}
	// λ → large: concentrates on the ERM.
	post, err := GibbsLogPosterior(logPrior, risks, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Exp(post[1]) < 0.999 {
		t.Errorf("large λ should concentrate on argmin, got %v", math.Exp(post[1]))
	}
	// λ → small: approaches the prior.
	post2, _ := GibbsLogPosterior(logPrior, risks, 1e-8)
	for i := range post2 {
		if !mathx.AlmostEqual(math.Exp(post2[i]), 1.0/3, 1e-6) {
			t.Errorf("small λ posterior[%d] = %v", i, math.Exp(post2[i]))
		}
	}
}

func TestGibbsValidation(t *testing.T) {
	if _, err := GibbsLogPosterior([]float64{0}, []float64{0, 1}, 1); err != ErrBadParams {
		t.Error("length mismatch")
	}
	if _, err := GibbsLogPosterior([]float64{0}, []float64{0}, 0); err != ErrBadParams {
		t.Error("lambda")
	}
	if _, err := GibbsOptimalValue([]float64{0}, []float64{0}, -1); err != ErrBadParams {
		t.Error("optimal value lambda")
	}
	if _, _, err := MinimizePosterior([]float64{0}, []float64{0}, 1, 0); err != ErrBadParams {
		t.Error("iters")
	}
}
