package parallel

import (
	"fmt"
	"math"
	"testing"
)

// benchWorkerCounts is the workers=N sweep every engine benchmark walks;
// cmd/dplearn-bench parses the sub-bench names into the BENCH_parallel.json
// artifact's Workers field.
var benchWorkerCounts = []int{1, 2, 4, 8}

// benchN is large enough to produce dozens of chunks at the default
// grain, so the work-stealing loop — not the spawn cost — dominates.
const benchN = 1 << 18

// BenchmarkSum measures the ordered chunked reduction across worker
// counts. The term does a little transcendental work per index so the
// benchmark measures fan-out over real arithmetic, not loop overhead.
func BenchmarkSum(b *testing.B) {
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := Options{Workers: w}
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = Sum(benchN, opts, func(i int) float64 {
					return math.Sqrt(float64(i) + 1)
				})
			}
			_ = sink
		})
	}
}

// BenchmarkMap measures element-wise fan-out (the risk-grid shape:
// out[i] = f(i)) across worker counts.
func BenchmarkMap(b *testing.B) {
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := Options{Workers: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := Map(benchN, opts, func(i int) float64 {
					return math.Log1p(float64(i))
				})
				_ = out
			}
		})
	}
}

// BenchmarkForGrainOverhead measures the engine's fixed cost on cheap
// bodies — the regime where instrumentation overhead would show first.
func BenchmarkForGrainOverhead(b *testing.B) {
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := Options{Workers: w}
			// One slot per chunk keeps the body race-free without atomics
			// polluting the overhead measurement.
			slots := make([]int64, numChunksGrain(benchN, minChunk))
			size := ChunkSize(benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ForGrain(benchN, minChunk, opts, func(lo, hi int) {
					slots[lo/size] = int64(hi - lo)
				})
			}
		})
	}
}
