// Context-aware and panic-isolated variants of the fan-out helpers.
//
// # Cancellation contract
//
// The *Ctx helpers check ctx.Err() at chunk-claim boundaries only: a
// chunk that has started always runs to completion, and a chunk is never
// claimed after the context is done. Because the chunk geometry is a
// pure function of (n, grain) — never of the worker count or of where a
// previous run was interrupted — a run that completes (whether or not a
// sibling run was cancelled) produces bit-identical results to every
// other completed run.
//
// # Panic isolation
//
// A panic inside body is recovered by the claiming worker and converted
// into a structured *WorkerError carrying the worker slot, the chunk
// range, the panic value, and the stack. The engine then stops claiming
// chunks (in-flight chunks drain) and reports the recovered panic with
// the lowest chunk index, so a seeded fault injection observes a stable
// abort instead of a process crash. The plain (non-Ctx) helpers re-panic
// the *WorkerError on the calling goroutine, which keeps their crash-on-
// panic contract while making the failure recoverable and attributable.
package parallel

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/mathx"
	"repro/internal/obs"
	"sync"
	"sync/atomic"
)

// WorkerError is a panic recovered inside a parallel worker: the
// structured, deterministic form of a fault that would otherwise crash
// the process from a goroutine no caller can recover on.
type WorkerError struct {
	// Worker is the worker slot that claimed the failing chunk.
	Worker int
	// Lo, Hi delimit the chunk's index range [Lo, Hi).
	Lo, Hi int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error summarizes the fault; the stack is kept separate so error chains
// stay one line.
func (e *WorkerError) Error() string {
	return fmt.Sprintf("parallel: worker %d panicked on chunk [%d,%d): %v", e.Worker, e.Lo, e.Hi, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so
// errors.Is/As see through the worker boundary (e.g. an injected fault
// sentinel survives recovery).
func (e *WorkerError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// runChunk executes body on one chunk, converting a panic into a
// *WorkerError. When the run's context carried a span, each chunk runs
// under a child span ("chunk", with worker slot and index range): the
// finest-grained timing unit a request waterfall resolves. The chunk
// count is a pure function of (n, grain), and the serial path creates
// the same spans, so the number of clock reads — and hence logical tick
// totals — is identical for every worker count.
func runChunk(sp *obs.Span, worker, lo, hi int, body func(lo, hi int)) (werr *WorkerError) {
	cs := sp.Child("chunk")
	if cs != nil {
		cs.SetAttr("worker", worker)
		cs.SetAttr("lo", lo)
		cs.SetAttr("hi", hi)
	}
	defer cs.End()
	defer func() {
		if r := recover(); r != nil {
			werr = &WorkerError{Worker: worker, Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
		}
	}()
	body(lo, hi)
	return nil
}

// ForCtx is For with cancellation and panic isolation: it returns a
// wrapped ctx.Err() if the context ends at a chunk-claim boundary, or a
// *WorkerError if body panics. A nil error means every chunk completed.
func ForCtx(ctx context.Context, n int, opts Options, body func(lo, hi int)) error {
	return ForGrainCtx(ctx, n, minChunk, opts, body)
}

// ForGrainCtx is ForCtx with an explicit grain (see ForGrain). The chunk
// geometry is identical to the non-Ctx helpers, so a run that completes
// is bit-identical to one executed without a context.
func ForGrainCtx(ctx context.Context, n, grain int, opts Options, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Resolve(n)
	size := chunkSizeGrain(n, grain)
	chunks := numChunksGrain(n, grain)
	sp := obs.SpanFromContext(ctx)
	if workers == 1 || chunks == 1 {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("parallel: canceled before chunk %d/%d: %w", c, chunks, err)
			}
			lo := c * size
			hi := min(lo+size, n)
			if werr := runChunk(sp, 0, lo, hi, body); werr != nil {
				return werr
			}
		}
		recordRun(opts.Obs, "serial", []int64{int64(chunks)})
		return nil
	}
	if workers > chunks {
		workers = chunks
	}
	claims := make([]int64, workers)
	werrs := make([]*WorkerError, chunks)
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			for {
				// Chunk-claim boundary: never claim after a fault or a
				// done context; a claimed chunk always completes.
				if aborted.Load() || ctx.Err() != nil {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * size
				hi := min(lo+size, n)
				if werr := runChunk(sp, slot, lo, hi, body); werr != nil {
					werrs[c] = werr
					aborted.Store(true)
					return
				}
				claims[slot]++
			}
		}(w)
	}
	wg.Wait()
	// Chunk-index order makes the reported fault stable: among the
	// panics that fired, the lowest-indexed one is returned.
	for _, werr := range werrs {
		if werr != nil {
			return werr
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("parallel: canceled at chunk-claim boundary: %w", err)
	}
	recordRun(opts.Obs, "parallel", claims)
	return nil
}

// MapCtx is Map with cancellation and panic isolation. On error the
// partially-filled slice is discarded.
func MapCtx(ctx context.Context, n int, opts Options, f func(i int) float64) ([]float64, error) {
	return MapGrainCtx(ctx, n, minChunk, opts, f)
}

// MapGrainCtx is MapCtx with an explicit grain (see ForGrain).
func MapGrainCtx(ctx context.Context, n, grain int, opts Options, f func(i int) float64) ([]float64, error) {
	out := make([]float64, n)
	if err := ForGrainCtx(ctx, n, grain, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(i)
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SumCtx is Sum with cancellation and panic isolation: the ordered
// chunked Kahan reduction is unchanged, so a completed SumCtx is
// bit-identical to Sum for every worker count.
func SumCtx(ctx context.Context, n int, opts Options, term func(i int) float64) (float64, error) {
	return SumGrainCtx(ctx, n, minChunk, opts, term)
}

// SumGrainCtx is SumCtx with an explicit grain (see SumGrain).
func SumGrainCtx(ctx context.Context, n, grain int, opts Options, term func(i int) float64) (float64, error) {
	if n <= 0 {
		return 0, nil
	}
	size := chunkSizeGrain(n, grain)
	chunks := numChunksGrain(n, grain)
	partials := make([]float64, chunks)
	if err := ForGrainCtx(ctx, n, grain, opts, func(lo, hi int) {
		var k mathx.KahanSum
		for i := lo; i < hi; i++ {
			k.Add(term(i))
		}
		partials[lo/size] = k.Sum()
	}); err != nil {
		return 0, err
	}
	var total mathx.KahanSum
	for _, p := range partials {
		total.Add(p)
	}
	return total.Sum(), nil
}
