package parallel

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForCtxCompletesLikeFor pins that a completed ctx run is
// bit-identical to the plain helpers for several worker counts.
func TestForCtxCompletesLikeFor(t *testing.T) {
	n := 10_000
	term := func(i int) float64 { return math.Sin(float64(i)) / (1 + float64(i)) }
	want := Sum(n, Options{Workers: 1}, term)
	for _, workers := range []int{1, 2, 7} {
		got, err := SumCtx(context.Background(), n, Options{Workers: workers}, term)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("workers=%d: SumCtx %v != Sum %v", workers, got, want)
		}
		m, err := MapCtx(context.Background(), n, Options{Workers: workers}, term)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range m {
			if math.Float64bits(m[i]) != math.Float64bits(term(i)) {
				t.Fatalf("workers=%d: MapCtx slot %d differs", workers, i)
			}
		}
	}
}

// TestForCtxPreCanceled pins that a context that is already done
// prevents any chunk from running, serially and in parallel.
func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForCtx(ctx, 1_000_000, Options{Workers: workers}, func(lo, hi int) {
			ran.Add(1)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d chunks ran after cancellation", workers, ran.Load())
		}
	}
}

// TestForCtxCancelMidRun cancels from inside a chunk and checks the
// engine stops claiming at the next boundary and reports the context
// error.
func TestForCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForGrainCtx(ctx, 1<<20, 256, Options{Workers: workers}, func(lo, hi int) {
			if ran.Add(1) == 3 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		total := int64(numChunksGrain(1<<20, 256))
		if ran.Load() >= total {
			t.Fatalf("workers=%d: all %d chunks ran despite cancellation", workers, total)
		}
	}
}

// TestWorkerErrorStructured pins panic isolation: the panic is recovered
// into a *WorkerError carrying the chunk range and stack, the sentinel
// panic value stays reachable through errors.Is, and the process (and
// the other workers) survive.
func TestWorkerErrorStructured(t *testing.T) {
	sentinel := errors.New("injected")
	for _, workers := range []int{1, 4} {
		err := ForGrainCtx(context.Background(), 10_000, 256, Options{Workers: workers}, func(lo, hi int) {
			if lo == 512 {
				panic(sentinel)
			}
		})
		var werr *WorkerError
		if !errors.As(err, &werr) {
			t.Fatalf("workers=%d: want *WorkerError, got %v", workers, err)
		}
		if werr.Lo != 512 || werr.Hi != 768 {
			t.Fatalf("workers=%d: fault chunk [%d,%d), want [512,768)", workers, werr.Lo, werr.Hi)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: sentinel lost through recovery: %v", workers, err)
		}
		if len(werr.Stack) == 0 || !strings.Contains(werr.Error(), "injected") {
			t.Fatalf("workers=%d: WorkerError missing stack or message: %v", workers, werr)
		}
	}
}

// TestWorkerErrorDeterministicAbort pins that a seeded fault at a fixed
// chunk aborts with the same WorkerError chunk range on every run and
// worker count.
func TestWorkerErrorDeterministicAbort(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		for _, workers := range []int{1, 2, 8} {
			err := ForGrainCtx(context.Background(), 100_000, 256, Options{Workers: workers}, func(lo, hi int) {
				if lo == 0 {
					panic("first-chunk fault")
				}
			})
			var werr *WorkerError
			if !errors.As(err, &werr) {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if werr.Lo != 0 {
				t.Fatalf("workers=%d trial %d: abort chunk %d, want 0", workers, trial, werr.Lo)
			}
		}
	}
}

// TestForGrainRepanicsOnCaller pins that the plain helpers convert a
// worker panic into a recoverable panic on the calling goroutine.
func TestForGrainRepanicsOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected re-panic on caller")
		}
		if _, ok := r.(*WorkerError); !ok {
			t.Fatalf("re-panic value is %T, want *WorkerError", r)
		}
	}()
	ForGrain(10_000, 256, Options{Workers: 4}, func(lo, hi int) {
		panic("boom")
	})
}

// TestSumCtxDiscardsOnError pins that a canceled or faulted reduction
// returns the zero value, never a partial sum.
func TestSumCtxDiscardsOnError(t *testing.T) {
	got, err := SumGrainCtx(context.Background(), 10_000, 256, Options{Workers: 2}, func(i int) float64 {
		if i == 5000 {
			panic("faulted term")
		}
		return 1
	})
	if err == nil || got != 0 {
		t.Fatalf("want (0, error), got (%v, %v)", got, err)
	}
}
