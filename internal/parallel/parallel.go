// Package parallel is the library's deterministic fan-out engine. Every
// data-parallel hot path — the Gibbs estimator's risk grid, the exact
// Figure-1 channel sums, the experiment sweeps — routes through the
// helpers here instead of hand-rolling goroutines.
//
// # Determinism contract
//
// Parallel execution is bit-for-bit deterministic: the result of every
// helper depends only on its inputs, never on the number of workers or on
// goroutine scheduling. Three rules enforce this:
//
//  1. Fixed chunk geometry. Index ranges are cut into chunks whose
//     boundaries are a pure function of the problem size n (see
//     ChunkSize), NOT of the worker count. Workers claim chunks from a
//     shared counter, so scheduling varies, but which indices share a
//     chunk never does.
//  2. Ordered reduction. Reductions (Sum, MaxAbs) accumulate one
//     partial per chunk and combine the partials in chunk-index order
//     after all workers finish. Floating-point addition is not
//     associative; fixing the grouping and the combination order fixes
//     the bits.
//  3. Serial path, same arithmetic. Workers == 1 runs on the calling
//     goroutine with no spawns, but walks the identical chunk structure,
//     so its output is byte-identical to every parallel worker count.
//     The golden determinism test (determinism_test.go at the module
//     root) pins this invariant for Fit, Certify, and the channel
//     leakage account.
//
// Element-wise maps (For filling out[i] = f(i)) are deterministic under
// any partition because each slot is written exactly once; they still use
// the fixed chunk geometry so the cost model is uniform.
package parallel

import (
	"context"
	"runtime"
	"strconv"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// Options configures worker fan-out for a computation. The zero value
// (Workers == 0) means "use all CPUs" (GOMAXPROCS); Workers == 1 forces
// serial execution on the calling goroutine; higher values cap the
// goroutine count. Options is plumbed through core.Config so one knob
// controls every hot path of a Learner.
type Options struct {
	// Workers is the maximum number of concurrent workers. 0 means
	// GOMAXPROCS; 1 means serial; negative values are treated as 0.
	Workers int
	// Obs optionally receives engine telemetry: run and chunk counts,
	// and per-worker chunk claims (utilization under work stealing).
	// Because Options is the one knob every hot path threads through
	// (core.Config.Parallel → gibbs, channel, sweeps), setting Obs here
	// instruments the whole pipeline. Instrumentation only observes — it
	// never changes chunk geometry, reduction order, or scheduling — so
	// results stay bit-identical with or without an Observer (see the
	// determinism contract above; the golden test pins this).
	Obs *obs.Observer
}

// Resolve returns the effective worker count for a problem of size n:
// at least 1, at most n, defaulting to GOMAXPROCS when Workers <= 0.
func (o Options) Resolve(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// minChunk is the smallest chunk an index range is cut into. Small
// chunks amortize badly (channel/counter traffic per chunk); large
// chunks load-balance badly. 256 indices of empirical-risk work is
// comfortably past the amortization knee while still yielding dozens of
// chunks on the grids the benchmarks care about.
const minChunk = 256

// maxChunks bounds the number of chunks so the per-chunk partial slices
// stay small for huge n.
const maxChunks = 1024

// ChunkSize returns the deterministic chunk size for a problem of size
// n. It is a pure function of n only — never of the worker count — which
// is what makes chunk-local reductions reproducible across Workers
// settings.
func ChunkSize(n int) int {
	return chunkSizeGrain(n, minChunk)
}

// chunkSizeGrain is ChunkSize with an explicit minimum chunk length. The
// grain is a property of the call site (how expensive one index is), so
// it stays a compile-time constant there — the geometry remains a pure
// function of (n, grain).
func chunkSizeGrain(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	if n <= grain {
		return max(n, 1)
	}
	size := grain
	if n/size > maxChunks {
		size = (n + maxChunks - 1) / maxChunks
	}
	return size
}

// numChunksGrain returns how many chunks of chunkSizeGrain(n, grain)
// cover [0, n).
func numChunksGrain(n, grain int) int {
	if n <= 0 {
		return 0
	}
	size := chunkSizeGrain(n, grain)
	return (n + size - 1) / size
}

// For runs body(lo, hi) over consecutive chunks covering [0, n), fanning
// the chunks out across the resolved worker count. body must treat
// distinct index ranges independently (no shared mutable state beyond
// disjoint slice slots); under that contract the result is identical for
// every worker count. For blocks until all chunks complete.
func For(n int, opts Options, body func(lo, hi int)) {
	ForGrain(n, minChunk, opts, body)
}

// ForGrain is For with an explicit grain: the minimum number of indices
// per chunk. Use a small grain (e.g. 8) when one index is expensive —
// a full empirical-risk evaluation, a whole posterior row — and the
// default For when indices are cheap arithmetic.
//
// A panic inside body no longer crashes the process from a worker
// goroutine: it is recovered into a structured *WorkerError (worker
// slot, chunk range, stack) and re-panicked on the calling goroutine,
// where callers and tests can recover it. Use ForGrainCtx to receive
// the fault as an error instead.
func ForGrain(n, grain int, opts Options, body func(lo, hi int)) {
	if err := ForGrainCtx(context.Background(), n, grain, opts, body); err != nil {
		// Background contexts never cancel, so the only possible error
		// is a recovered worker panic.
		panic(err)
	}
}

// recordRun publishes one engine run's telemetry: the execution mode,
// the total chunk count, and per-worker-slot chunk claims. Workers claim
// chunks from a shared counter, so the per-slot claim distribution is
// exactly the engine's utilization profile — a starved slot shows up as
// a lagging dplearn_parallel_worker_chunks_total series.
func recordRun(o *obs.Observer, mode string, claims []int64) {
	reg := o.Reg()
	if reg == nil {
		return
	}
	var total uint64
	for _, c := range claims {
		total += uint64(c)
	}
	reg.Counter("dplearn_parallel_runs_total",
		"parallel-engine runs by execution mode", "mode", mode).Inc()
	reg.Counter("dplearn_parallel_chunks_total",
		"index chunks processed by the parallel engine").Add(total)
	for w, c := range claims {
		if c > 0 {
			reg.Counter("dplearn_parallel_worker_chunks_total",
				"chunks claimed per worker slot (utilization)", "worker", strconv.Itoa(w)).Add(uint64(c))
		}
	}
}

// Map fills and returns out[i] = f(i) for i in [0, n). Each slot is an
// independent pure function of i, so the result is worker-count
// independent by construction.
func Map(n int, opts Options, f func(i int) float64) []float64 {
	return MapGrain(n, minChunk, opts, f)
}

// MapGrain is Map with an explicit grain (see ForGrain).
func MapGrain(n, grain int, opts Options, f func(i int) float64) []float64 {
	out := make([]float64, n)
	ForGrain(n, grain, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(i)
		}
	})
	return out
}

// Sum returns the ordered chunked sum of term(i) for i in [0, n): each
// chunk accumulates a Kahan-compensated partial, and the partials are
// combined in chunk-index order with a second Kahan pass. The grouping
// depends only on n (rule 1), the combination order is fixed (rule 2),
// so the result is bit-identical for every worker count.
func Sum(n int, opts Options, term func(i int) float64) float64 {
	return SumGrain(n, minChunk, opts, term)
}

// SumGrain is Sum with an explicit grain (see ForGrain). The grain is
// part of the fixed chunk geometry, so a call site always reduces in the
// same order regardless of worker count.
func SumGrain(n, grain int, opts Options, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	size := chunkSizeGrain(n, grain)
	chunks := numChunksGrain(n, grain)
	partials := make([]float64, chunks)
	ForGrain(n, grain, opts, func(lo, hi int) {
		var k mathx.KahanSum
		for i := lo; i < hi; i++ {
			k.Add(term(i))
		}
		partials[lo/size] = k.Sum()
	})
	var total mathx.KahanSum
	for _, p := range partials {
		total.Add(p)
	}
	return total.Sum()
}

// MaxAbs returns max_i |term(i)| over [0, n), reduced per chunk and then
// in chunk-index order. Max is order-invariant for floats (ignoring NaN,
// which callers must not produce), but the ordered reduction keeps the
// code shape uniform with Sum. Empty ranges return 0.
func MaxAbs(n int, opts Options, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	size := ChunkSize(n)
	chunks := numChunksGrain(n, minChunk)
	partials := make([]float64, chunks)
	For(n, opts, func(lo, hi int) {
		var m float64
		for i := lo; i < hi; i++ {
			v := term(i)
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		partials[lo/size] = m
	})
	var m float64
	for _, p := range partials {
		if p > m {
			m = p
		}
	}
	return m
}
