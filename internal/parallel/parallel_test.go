package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/mathx"
)

// workerCounts exercises the serial path, small and awkward fan-outs,
// and the GOMAXPROCS default.
func workerCounts() []int {
	return []int{1, 2, 3, 7, runtime.GOMAXPROCS(0), 0}
}

func TestResolve(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{1, 100, 1},
		{8, 4, 4},
		{8, 0, 1},
	}
	for _, c := range cases {
		if got := (Options{Workers: c.workers}).Resolve(c.n); got != c.want {
			t.Errorf("Resolve(workers=%d, n=%d) = %d, want %d", c.workers, c.n, c.want, got)
		}
	}
}

func TestChunkSizeDependsOnlyOnN(t *testing.T) {
	// Pure function of n: small n is one chunk, large n is capped at
	// maxChunks chunks.
	if got := ChunkSize(10); got != 10 {
		t.Errorf("ChunkSize(10) = %d", got)
	}
	if got := ChunkSize(minChunk); got != minChunk {
		t.Errorf("ChunkSize(%d) = %d", minChunk, got)
	}
	if got := ChunkSize(100 * minChunk); got != minChunk {
		t.Errorf("ChunkSize(large) = %d, want %d", got, minChunk)
	}
	huge := 10 * maxChunks * minChunk
	if nc := numChunksGrain(huge, minChunk); nc > maxChunks {
		t.Errorf("numChunks(%d) = %d exceeds cap %d", huge, nc, maxChunks)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range workerCounts() {
		for _, n := range []int{0, 1, 255, 256, 257, 1000, 5000} {
			hits := make([]int32, n)
			For(n, Options{Workers: w}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	n := 3000
	f := func(i int) float64 { return math.Sin(float64(i)) * math.Exp(-float64(i)/1000) }
	want := Map(n, Options{Workers: 1}, f)
	for _, w := range workerCounts() {
		got := Map(n, Options{Workers: w}, f)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: Map[%d] = %v != %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestSumBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// Adversarial magnitudes: mixing 1e16 with 1e-8 terms makes the sum
	// depend on grouping, so bit-equality across worker counts is a real
	// test of the fixed chunk geometry + ordered combination.
	n := 4097
	term := func(i int) float64 {
		switch i % 3 {
		case 0:
			return 1e16 * math.Sin(float64(i))
		case 1:
			return 1e-8 * float64(i)
		default:
			return -1e15 * math.Cos(float64(i))
		}
	}
	want := Sum(n, Options{Workers: 1}, term)
	for _, w := range workerCounts() {
		if got := Sum(n, Options{Workers: w}, term); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: Sum = %x, serial %x", w, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestSumAccuracy(t *testing.T) {
	// Against the straight Kahan sum the library uses elsewhere: the
	// chunked reduction must agree to full precision on benign input.
	n := 10000
	term := func(i int) float64 { return 1 / float64(i+1) }
	var k mathx.KahanSum
	for i := 0; i < n; i++ {
		k.Add(term(i))
	}
	got := Sum(n, Options{}, term)
	if !mathx.AlmostEqual(got, k.Sum(), 1e-14) {
		t.Errorf("Sum = %v, Kahan = %v", got, k.Sum())
	}
	if Sum(0, Options{}, term) != 0 {
		t.Error("empty Sum must be 0")
	}
}

func TestMaxAbs(t *testing.T) {
	n := 2000
	term := func(i int) float64 { return math.Sin(float64(i)) * float64(i%97) * (-1) }
	want := MaxAbs(n, Options{Workers: 1}, term)
	for _, w := range workerCounts() {
		if got := MaxAbs(n, Options{Workers: w}, term); got != want {
			t.Fatalf("workers=%d: MaxAbs = %v != %v", w, got, want)
		}
	}
	if MaxAbs(0, Options{}, term) != 0 {
		t.Error("empty MaxAbs must be 0")
	}
}
