// Package rng provides deterministic, seedable random samplers for every
// distribution the library needs: the noise distributions behind
// differentially-private mechanisms (Laplace, two-sided geometric,
// Gaussian), the classical continuous families used by synthetic data
// generators (exponential, gamma, beta), and discrete sampling utilities
// (Bernoulli, categorical with three algorithms, permutations).
//
// Every sampler hangs off an *RNG, which is a thin wrapper over
// math/rand.Rand with an explicit seed so that experiments, tests, and
// benchmarks are exactly reproducible. This library is a research
// reproduction; cryptographic randomness (crypto/rand) would be required
// before using the mechanisms against a real adversary, and the RNG type
// documents that boundary. The rawrand lint check (cmd/dplearn-lint)
// enforces it: this package is the only non-test code allowed to import
// math/rand, so swapping the source later is a one-package change.
package rng

import (
	"math"
	"math/rand"
)

// RNG is a seedable source of random variates. It is not safe for
// concurrent use; create one RNG per goroutine (e.g. via Split).
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with the given value. Equal seeds produce
// identical streams.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independently-seeded RNG from this one. The child
// stream is a deterministic function of the parent's state, so a seeded
// experiment that Splits per-worker remains reproducible.
func (g *RNG) Split() *RNG {
	return New(g.SplitSeed())
}

// SplitSeed consumes exactly the parent state one Split would and
// returns the seed that Split would have used, without constructing the
// child. Checkpointed sweeps persist this fingerprint: New(SplitSeed())
// is bit-identical to Split(), so a resumed run can both re-derive a
// cell's private stream and verify a saved result belongs to it.
func (g *RNG) SplitSeed() int64 {
	return g.r.Int63()
}

// Int63n returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bernoulli(p float64) bool {
	return g.r.Float64() < p
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation. sigma must be non-negative.
func (g *RNG) Normal(mean, sigma float64) float64 {
	return mean + sigma*g.r.NormFloat64()
}

// Exponential returns an exponential variate with the given rate
// (mean 1/rate). rate must be positive.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// Laplace returns a Laplace variate with the given location and scale b:
// density (1/2b)·exp(−|x−loc|/b). This is the noise distribution of the
// Laplace mechanism (Dwork et al. 2006). scale must be positive.
func (g *RNG) Laplace(loc, scale float64) float64 {
	if scale <= 0 {
		panic("rng: Laplace requires scale > 0")
	}
	// Inverse-CDF: u uniform on (-1/2, 1/2); x = loc - b·sgn(u)·ln(1-2|u|).
	u := g.r.Float64() - 0.5
	if u >= 0 {
		return loc - scale*math.Log(1-2*u)
	}
	return loc + scale*math.Log(1+2*u)
}

// TwoSidedGeometric returns a discrete Laplace variate on the integers:
// P(X = k) ∝ α^|k| with α = exp(−1/scale) ∈ (0,1). It is the integer
// analogue of Laplace noise, used by the geometric mechanism
// (Ghosh–Roughgarden–Sundararajan). scale must be positive.
func (g *RNG) TwoSidedGeometric(scale float64) int64 {
	if scale <= 0 {
		panic("rng: TwoSidedGeometric requires scale > 0")
	}
	alpha := math.Exp(-1 / scale)
	// The difference of two iid Geometric(1-α) variables is exactly the
	// two-sided geometric: P(G1-G2 = k) = (1-α)/(1+α) · α^|k|.
	return g.geometric(1-alpha) - g.geometric(1-alpha)
}

// geometric returns k >= 0 with P(k) = p(1-p)^k.
func (g *RNG) geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: geometric requires p in (0, 1]")
	}
	if p == 1 { //dplint:ignore floateq exact boundary: success probability of bitwise 1 always returns 0 failures
		return 0
	}
	// Inversion of the CDF via an exponential draw.
	u := g.r.Float64()
	return int64(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// Geometric returns k >= 0 with P(k) = p(1-p)^k, the number of failures
// before the first success.
func (g *RNG) Geometric(p float64) int64 { return g.geometric(p) }

// Gamma returns a gamma variate with the given shape and scale
// (mean shape·scale) using the Marsaglia–Tsang squeeze method, with the
// standard boost for shape < 1. shape and scale must be positive.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// X_a = X_{a+1} · U^{1/a}
		u := g.r.Float64()
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = g.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a Beta(a, b) variate via two gamma draws. a and b must be
// positive.
func (g *RNG) Beta(a, b float64) float64 {
	x := g.Gamma(a, 1)
	y := g.Gamma(b, 1)
	return x / (x + y)
}

// Categorical samples an index from the (unnormalized, non-negative)
// weight vector by linear scan. It panics on an empty, negative, or
// all-zero weight vector.
func (g *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical on empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical requires non-negative weights")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical requires positive total weight")
	}
	u := g.r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1 // rounding fallthrough
}

// CategoricalLog samples an index from unnormalized log-weights using the
// Gumbel-max trick, which never leaves log space and is therefore the
// sampler of choice for exponential-mechanism and Gibbs-posterior draws
// whose weights underflow exp(). Entries of -Inf have probability zero;
// it panics if all entries are -Inf.
func (g *RNG) CategoricalLog(logWeights []float64) int {
	if len(logWeights) == 0 {
		panic("rng: CategoricalLog on empty weights")
	}
	best, bestIdx := math.Inf(-1), -1
	for i, lw := range logWeights {
		if math.IsInf(lw, -1) {
			continue
		}
		// Gumbel(0,1) = -log(-log U)
		u := g.r.Float64()
		for u == 0 { //dplint:ignore floateq rejects the exact-zero draw so log(-log(u)) stays finite (Mironov-style edge case)
			u = g.r.Float64()
		}
		v := lw - math.Log(-math.Log(u))
		if v > best {
			best, bestIdx = v, i
		}
	}
	if bestIdx < 0 {
		panic("rng: CategoricalLog with all weights -Inf")
	}
	return bestIdx
}

// Perm returns a uniformly random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using the given swap
// function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Alias is a preprocessed categorical distribution supporting O(1)
// sampling via Walker's alias method. Build one with NewAlias when the
// same distribution is sampled many times.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from the (unnormalized, non-negative)
// weight vector. It panics on invalid weights, mirroring Categorical.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias on empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewAlias requires non-negative weights")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: NewAlias requires positive total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws one index from the alias table using g.
func (a *Alias) Sample(g *RNG) int {
	i := g.r.Intn(len(a.prob))
	if g.r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// N returns the number of categories in the table.
func (a *Alias) N() int { return len(a.prob) }
