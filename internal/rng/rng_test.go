package rng

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

const (
	momentSamples = 200_000
	momentTol     = 0.05 // relative tolerance for Monte-Carlo moment checks
)

func sampleMoments(n int, draw func() float64) (mean, variance float64) {
	var w mathx.Welford
	for i := 0; i < n; i++ {
		w.Add(draw())
	}
	return w.Mean(), w.Variance()
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("equal seeds must produce equal streams")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}

func TestSplitIsDeterministic(t *testing.T) {
	a, b := New(1).Split(), New(1).Split()
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split of equal parents must match")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := New(5)
	for i := 0; i < 10000; i++ {
		x := g.Uniform(-2, 3)
		if x < -2 || x >= 3 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(7)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		count := 0
		n := 100_000
		for i := 0; i < n; i++ {
			if g.Bernoulli(p) {
				count++
			}
		}
		freq := float64(count) / float64(n)
		if math.Abs(freq-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v", p, freq)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(11)
	mean, variance := sampleMoments(momentSamples, func() float64 { return g.Normal(3, 2) })
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-4)/4 > momentTol {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	g := New(13)
	rate := 2.5
	mean, variance := sampleMoments(momentSamples, func() float64 { return g.Exponential(rate) })
	if math.Abs(mean-1/rate)/(1/rate) > momentTol {
		t.Errorf("Exponential mean = %v, want %v", mean, 1/rate)
	}
	wantVar := 1 / (rate * rate)
	if math.Abs(variance-wantVar)/wantVar > momentTol {
		t.Errorf("Exponential variance = %v, want %v", variance, wantVar)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(rate<=0) should panic")
		}
	}()
	New(1).Exponential(0)
}

func TestLaplaceMoments(t *testing.T) {
	g := New(17)
	loc, scale := 1.0, 0.7
	mean, variance := sampleMoments(momentSamples, func() float64 { return g.Laplace(loc, scale) })
	if math.Abs(mean-loc) > 0.02 {
		t.Errorf("Laplace mean = %v", mean)
	}
	wantVar := 2 * scale * scale
	if math.Abs(variance-wantVar)/wantVar > momentTol {
		t.Errorf("Laplace variance = %v, want %v", variance, wantVar)
	}
}

func TestLaplaceCDF(t *testing.T) {
	// Empirical CDF at 0 for Laplace(0, b) must be 1/2; at b it is 1 - e^{-1}/2.
	g := New(19)
	b := 1.3
	n := 200_000
	atZero, atB := 0, 0
	for i := 0; i < n; i++ {
		x := g.Laplace(0, b)
		if x <= 0 {
			atZero++
		}
		if x <= b {
			atB++
		}
	}
	f0 := float64(atZero) / float64(n)
	fb := float64(atB) / float64(n)
	if math.Abs(f0-0.5) > 0.01 {
		t.Errorf("Laplace CDF(0) = %v", f0)
	}
	want := 1 - math.Exp(-1)/2
	if math.Abs(fb-want) > 0.01 {
		t.Errorf("Laplace CDF(b) = %v, want %v", fb, want)
	}
}

func TestLaplacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Laplace(scale<=0) should panic")
		}
	}()
	New(1).Laplace(0, -1)
}

func TestGeometricPMF(t *testing.T) {
	g := New(23)
	p := 0.3
	n := 200_000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		k := g.Geometric(p)
		if k < 0 {
			t.Fatalf("negative geometric draw %d", k)
		}
		if int(k) < len(counts) {
			counts[k]++
		}
	}
	for k := 0; k < 8; k++ {
		want := p * math.Pow(1-p, float64(k))
		got := float64(counts[k]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Geometric pmf(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestTwoSidedGeometricSymmetryAndPMF(t *testing.T) {
	g := New(29)
	scale := 1.5
	alpha := math.Exp(-1 / scale)
	n := 300_000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[g.TwoSidedGeometric(scale)]++
	}
	// P(X=k) = (1-α)/(1+α) · α^|k|
	norm := (1 - alpha) / (1 + alpha)
	for _, k := range []int64{-3, -2, -1, 0, 1, 2, 3} {
		want := norm * math.Pow(alpha, math.Abs(float64(k)))
		got := float64(counts[k]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("TwoSidedGeometric pmf(%d) = %v, want %v", k, got, want)
		}
	}
	// Symmetry
	if math.Abs(float64(counts[1]-counts[-1]))/float64(n) > 0.01 {
		t.Error("TwoSidedGeometric not symmetric")
	}
}

func TestGammaMoments(t *testing.T) {
	g := New(31)
	for _, tc := range []struct{ shape, scale float64 }{{2.5, 1.2}, {0.5, 2.0}, {9, 0.25}} {
		mean, variance := sampleMoments(momentSamples, func() float64 { return g.Gamma(tc.shape, tc.scale) })
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean)/wantMean > momentTol {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 2*momentTol {
			t.Errorf("Gamma(%v,%v) variance = %v, want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	g := New(37)
	a, b := 2.0, 5.0
	mean, variance := sampleMoments(momentSamples, func() float64 { return g.Beta(a, b) })
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if math.Abs(mean-wantMean)/wantMean > momentTol {
		t.Errorf("Beta mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 2*momentTol {
		t.Errorf("Beta variance = %v, want %v", variance, wantVar)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	g := New(41)
	weights := []float64{1, 2, 3, 4}
	n := 200_000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[g.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical freq[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalLogMatchesLinear(t *testing.T) {
	g := New(43)
	weights := []float64{0.5, 1.5, 3}
	logw := make([]float64, len(weights))
	for i, w := range weights {
		logw[i] = math.Log(w) - 700 // deep underflow territory for exp()
	}
	n := 200_000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[g.CategoricalLog(logw)]++
	}
	total := 5.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("CategoricalLog freq[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalLogNegInfExcluded(t *testing.T) {
	g := New(47)
	logw := []float64{math.Inf(-1), 0, math.Inf(-1)}
	for i := 0; i < 1000; i++ {
		if got := g.CategoricalLog(logw); got != 1 {
			t.Fatalf("sampled excluded index %d", got)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := []func(){
		func() { New(1).Categorical(nil) },
		func() { New(1).Categorical([]float64{-1, 2}) },
		func() { New(1).Categorical([]float64{0, 0}) },
		func() { New(1).CategoricalLog(nil) },
		func() { New(1).CategoricalLog([]float64{math.Inf(-1)}) },
		func() { NewAlias(nil) },
		func() { NewAlias([]float64{0}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAliasMatchesCategorical(t *testing.T) {
	g := New(53)
	weights := []float64{5, 0, 1, 2, 8, 0.5}
	a := NewAlias(weights)
	if a.N() != len(weights) {
		t.Fatalf("N = %d", a.N())
	}
	n := 300_000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(g)]++
	}
	total := mathx.SumSlice(weights)
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Alias freq[%d] = %v, want %v", i, got, want)
		}
	}
	if counts[1] != 0 {
		t.Error("zero-weight category was sampled")
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(59)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	g := New(61)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 28 {
		t.Errorf("shuffle changed contents: %v (orig %v)", xs, orig)
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gamma(shape<=0) should panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func BenchmarkLaplace(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Laplace(0, 1)
	}
}

func BenchmarkCategoricalLog(b *testing.B) {
	g := New(1)
	logw := make([]float64, 256)
	for i := range logw {
		logw[i] = -float64(i) * 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CategoricalLog(logw)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	g := New(1)
	w := make([]float64, 256)
	for i := range w {
		w[i] = float64(i + 1)
	}
	a := NewAlias(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(g)
	}
}
