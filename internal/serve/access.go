package serve

import (
	"context"
	"sync"

	"repro/internal/mechanism"
)

// accessInfo is the per-request scratchpad behind one access-log line.
// The tracing middleware allocates it, threads it through the request
// context, and handlers fill in what they learn (tenant, quoted ε,
// commit outcome); the middleware renders it into an obs.AccessRecord
// when the response is written. All spends of a request happen on the
// request goroutine before the middleware's deferred epilogue runs, so
// plain fields suffice.
type accessInfo struct {
	tenant  string
	quoted  float64
	spent   float64
	outcome string
	idemKey string
}

// accessKey is the context key carrying the request's accessInfo.
type accessKey struct{}

// withAccessInfo returns ctx carrying ai.
func withAccessInfo(ctx context.Context, ai *accessInfo) context.Context {
	return context.WithValue(ctx, accessKey{}, ai)
}

// accessFrom returns the request's accessInfo, or nil (all setters are
// nil-safe, so handlers never branch).
func accessFrom(ctx context.Context) *accessInfo {
	ai, _ := ctx.Value(accessKey{}).(*accessInfo)
	return ai
}

func (ai *accessInfo) setTenant(id string) {
	if ai != nil {
		ai.tenant = id
	}
}

func (ai *accessInfo) setQuoted(eps float64) {
	if ai != nil {
		ai.quoted = eps
	}
}

// setSpent records a handler-side estimate of the committed ε. When the
// request carried a traceparent, the middleware overrides it with the
// exact tally the accountant observers accumulated under the trace id.
func (ai *accessInfo) setSpent(eps float64) {
	if ai != nil {
		ai.spent = eps
	}
}

func (ai *accessInfo) setOutcome(o string) {
	if ai != nil {
		ai.outcome = o
	}
}

func (ai *accessInfo) setIdemKey(k string) {
	if ai != nil {
		ai.idemKey = k
	}
}

// traceSpends tallies the ε committed under each in-flight trace id.
// The tracing middleware registers a request's trace id before the
// handler runs; every accountant spend observer adds the committed
// guarantee under the spend's Meta.Trace; the middleware collects the
// tally when the response is written. This is how the access log's
// spent_epsilon is exact — it is the sum of the very guarantees the
// accountant composed, keyed by the trace id that joins them — rather
// than a handler-side estimate.
type traceSpends struct {
	mu sync.Mutex
	m  map[string]*traceTally
}

type traceTally struct{ eps, del float64 }

func newTraceSpends() *traceSpends {
	return &traceSpends{m: make(map[string]*traceTally)}
}

// begin registers trace as in-flight (nil-safe; "" is ignored).
func (ts *traceSpends) begin(trace string) {
	if ts == nil || trace == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.m[trace] = &traceTally{}
}

// add accumulates one committed guarantee under trace. Unregistered
// traces are ignored, so spends outside the request middleware (tests
// driving a tenant directly) never leak tallies.
func (ts *traceSpends) add(trace string, g mechanism.Guarantee) {
	if ts == nil || trace == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.m[trace]; ok {
		t.eps += g.Epsilon
		t.del += g.Delta
	}
}

// take removes trace's tally and returns its committed ε.
func (ts *traceSpends) take(trace string) (eps float64, ok bool) {
	if ts == nil || trace == "" {
		return 0, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, found := ts.m[trace]
	delete(ts.m, trace)
	if !found {
		return 0, false
	}
	return t.eps, true
}
