package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/mechanism"
)

// TestChaosNeverHalfSpends drives a mixed request stream through a
// server whose fault schedule panics workers and fails checkpoint
// writes inside in-flight requests — in the window where a reservation
// is held. The contract under fire: every 5xx released (never
// committed) its reservation, so afterwards the accountant holds
// exactly one record per 2xx spending response, zero reservations, and
// the ledger audits bit-for-bit.
func TestChaosNeverHalfSpends(t *testing.T) {
	const requests = 160
	sched := faults.NewSchedule(99, map[faults.Class]float64{
		faults.WorkerPanic:     0.12,
		faults.CheckpointWrite: 0.12,
	})
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "chaos", Budget: mechanism.Guarantee{Epsilon: 1000}}},
		Learner: LearnerSpec{Epsilon: 0.2},
		Faults:  sched,
	})
	data := testData(31, 16, 2)
	endpoints := []string{"fit", "summary", "select", "density"}
	var ok, injected int
	for i := 0; i < requests; i++ {
		seed := int64(i + 1) // the fault key: deterministic plan over 1..requests
		var resp *http.Response
		var body []byte
		switch endpoints[i%len(endpoints)] {
		case "fit":
			resp, body = postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "chaos", Seed: seed, Data: data})
		case "summary":
			resp, body = postJSON(t, ts.URL+"/v1/summary", SummaryRequest{
				Tenant: "chaos", Seed: seed, Feature: 0, Lo: -1, Hi: 1,
				Quantiles: []float64{0.5}, Epsilon: 0.01, Data: data,
			})
		case "select":
			resp, body = postJSON(t, ts.URL+"/v1/select", SelectRequest{
				Tenant: "chaos", Seed: seed, Epsilon: 0.01,
				Candidates: []CandidateJSON{
					{Name: "a", Theta: []float64{1, 0}},
					{Name: "b", Theta: []float64{0, 1}},
				},
				Data: data,
			})
		case "density":
			resp, body = postJSON(t, ts.URL+"/v1/density", DensityRequest{
				Tenant: "chaos", Seed: seed, Feature: 0, Lo: -1, Hi: 1,
				Epsilon: 0.01, Bins: 8, Data: data,
			})
		}
		planned := sched.Hit(faults.WorkerPanic, int(seed)) || sched.Hit(faults.CheckpointWrite, int(seed))
		switch resp.StatusCode {
		case http.StatusOK:
			if planned {
				t.Errorf("request %d: plan fired but got 200", i)
			}
			ok++
		case http.StatusInternalServerError:
			if !planned {
				t.Errorf("request %d: unplanned 500: %s", i, body)
			}
			if !strings.Contains(string(body), "injected") {
				t.Errorf("request %d: 500 body does not identify the injected fault: %s", i, body)
			}
			injected++
		default:
			t.Errorf("request %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	if injected == 0 {
		t.Fatal("the schedule never fired; the battery tested nothing")
	}
	if ok == 0 {
		t.Fatal("every request faulted; books have nothing to balance")
	}
	t.Logf("chaos: %d ok, %d injected faults", ok, injected)

	tn, _ := s.Tenants().Get("chaos")
	if got := tn.Acct.Count(); got != ok {
		t.Errorf("accountant has %d record(s), want %d (one per 2xx; a 5xx must release, not commit)", got, ok)
	}
	if r := tn.Acct.Reserved(); r != 0 {
		t.Errorf("%d reservation(s) leaked through the fault paths", r)
	}
	checkBooks(t, tn)
}

// TestChaosPanicReleasesReservation pins the single-request panic
// story: a schedule that always panics turns the request into a 500
// whose reservation is back in the budget — provably, because a
// fault-free retry of the full budget then succeeds.
func TestChaosPanicReleasesReservation(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 0.5}}},
		Faults:  faults.NewSchedule(1, map[faults.Class]float64{faults.WorkerPanic: 1}),
	})
	data := testData(32, 16, 2)
	// The quote equals the whole budget: if the panic path leaked its
	// reservation, no later request could ever be admitted.
	req := SummaryRequest{Tenant: "solo", Seed: 7, Feature: 0, Lo: -1, Hi: 1,
		Quantiles: []float64{0.5}, Epsilon: 0.5, Data: data}
	resp, body := postJSON(t, ts.URL+"/v1/summary", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: HTTP %d: %s", resp.StatusCode, body)
	}
	tn, _ := s.Tenants().Get("solo")
	if tn.Acct.Count() != 0 || tn.Acct.Reserved() != 0 {
		t.Fatalf("after panic: %d record(s), %d reservation(s); want 0, 0",
			tn.Acct.Count(), tn.Acct.Reserved())
	}
	// Disarm the schedule and retry: the full budget must be available.
	s.cfg.Faults = nil
	resp, body = postJSON(t, ts.URL+"/v1/summary", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after released panic: HTTP %d: %s", resp.StatusCode, body)
	}
	if tn.Acct.Count() != 1 {
		t.Errorf("retry committed %d record(s), want 1", tn.Acct.Count())
	}
	checkBooks(t, tn)
}

// TestChaosCheckpointErrorReleases does the same for the error (non
// panic) injection path.
func TestChaosCheckpointErrorReleases(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 0.5}}},
		Faults:  faults.NewSchedule(1, map[faults.Class]float64{faults.CheckpointWrite: 1}),
	})
	data := testData(33, 16, 2)
	req := SelectRequest{Tenant: "solo", Seed: 7, Epsilon: 0.5,
		Candidates: []CandidateJSON{{Name: "a", Theta: []float64{1, 0}}, {Name: "b", Theta: []float64{0, 1}}},
		Data:       data}
	resp, body := postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted select: HTTP %d: %s", resp.StatusCode, body)
	}
	tn, _ := s.Tenants().Get("solo")
	if tn.Acct.Count() != 0 || tn.Acct.Reserved() != 0 {
		t.Fatalf("after injected error: %d record(s), %d reservation(s); want 0, 0",
			tn.Acct.Count(), tn.Acct.Reserved())
	}
	s.cfg.Faults = nil
	resp, body = postJSON(t, ts.URL+"/v1/select", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after released error: HTTP %d: %s", resp.StatusCode, body)
	}
	checkBooks(t, tn)
}
