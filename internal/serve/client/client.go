// Package client is the retry-aware HTTP client for the dplearn release
// service: per-request deadlines, jittered exponential backoff that
// honors Retry-After, idempotency-keyed retries that are safe by
// construction, and a consecutive-5xx circuit breaker.
//
// The retry policy encodes the serve layer's charging semantics:
//
//   - 429 (budget refused) and 503 (draining/overload) are always
//     retryable — a refused request charged nothing, so a retry risks
//     nothing. The server's Retry-After hint is honored, capped at
//     MaxRetryAfter so a test fleet does not sleep a wall-clock minute
//     on a hard-exhausted budget that will never replenish.
//   - Other 5xx and transport errors are retried ONLY when the request
//     carries an idempotency key. A 500 can hide a post-commit crash —
//     the charge is durable even though the response was lost — and a
//     keyless retry would buy the same release twice. With a key the
//     server replays the original outcome without a second charge, so
//     the retry is free by protocol, not by hope.
//   - A run of consecutive 5xx responses opens the breaker: requests
//     fail fast with ErrCircuitOpen until the cooldown elapses, so a
//     crashed or crash-looping server is not hammered by every worker.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/rng"
)

// ErrCircuitOpen reports a request refused locally because the breaker
// is open (too many consecutive 5xx responses; retry after cooldown).
var ErrCircuitOpen = errors.New("client: circuit open")

// Config shapes a Client. Zero values take the documented defaults.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per request, first included (default 3).
	MaxAttempts int
	// Deadline bounds one logical request including all retries and
	// backoff sleeps (default 30s; ≤0 keeps the default).
	Deadline time.Duration
	// BaseBackoff seeds the exponential backoff: attempt n sleeps
	// BaseBackoff·2ⁿ, full-jittered (default 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (default 1s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server Retry-After hint is honored.
	// Budgets never replenish, so long hints usually mean "never":
	// sleeping them in full would serialize a whole load run behind one
	// exhausted tenant (default 500ms).
	MaxRetryAfter time.Duration
	// BreakerThreshold is the consecutive-5xx count that opens the
	// circuit (default 5; <0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open (default 1s).
	BreakerCooldown time.Duration
	// Seed drives the jitter stream (deterministic per seed; the sleep
	// durations are wall-clock, but WHICH durations are drawn replays).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 500 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Result is one settled logical request.
type Result struct {
	// Status is the final HTTP status code.
	Status int
	// Body is the final response body.
	Body []byte
	// Attempts is how many HTTP requests were sent (≥1); Retries is
	// Attempts-1.
	Attempts int
	// Replayed reports that the response came from the server's durable
	// idempotency store (the Idempotency-Replayed header) rather than a
	// fresh release.
	Replayed bool
}

// Retries returns the retry count of the settled request.
func (r *Result) Retries() int {
	if r.Attempts <= 1 {
		return 0
	}
	return r.Attempts - 1
}

// Client is a retrying dplearn-serve client. Safe for concurrent use;
// the breaker and jitter stream are shared across goroutines.
type Client struct {
	cfg Config

	mu       sync.Mutex
	g        *rng.RNG
	failures int       // consecutive 5xx/transport failures
	openedAt time.Time // breaker open timestamp (zero = closed)
}

// New builds a client.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, g: rng.New(cfg.Seed)}
}

// Post sends one logical JSON request to path (e.g. "/v1/fit"),
// retrying per the policy above. idemKey, when non-empty, is sent as
// the Idempotency-Key header and unlocks retries of 5xx and transport
// failures. The returned Result holds the final status and body;
// err is non-nil only when no response settled (deadline, breaker,
// attempts exhausted on transport errors).
func (c *Client) Post(ctx context.Context, path string, payload any, idemKey string) (*Result, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("client: marshal: %w", err)
	}
	return c.PostRaw(ctx, path, body, idemKey, nil)
}

// PostRaw is Post for a pre-marshaled body, with optional extra headers
// (e.g. a traceparent) set on every attempt. Load generators use it to
// keep their pre-generated request streams byte-identical across runs.
func (c *Client) PostRaw(ctx context.Context, path string, body []byte, idemKey string, header http.Header) (*Result, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
	defer cancel()
	res := &Result{}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if wait, open := c.breakerOpen(); open {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (cooling %s after: %v)", ErrCircuitOpen, wait.Round(time.Millisecond), lastErr)
			}
			return nil, fmt.Errorf("%w (cooling %s)", ErrCircuitOpen, wait.Round(time.Millisecond))
		}
		status, respBody, retryAfter, replayed, err := c.once(ctx, path, body, idemKey, header)
		res.Attempts = attempt + 1
		if err != nil {
			lastErr = err
			c.recordFailure()
			if ctx.Err() != nil {
				return nil, fmt.Errorf("client: %s: %w", path, ctx.Err())
			}
			if idemKey == "" {
				// A transport error after the server committed would make a
				// blind retry a double release; without a key, surface it.
				return nil, fmt.Errorf("client: %s: %w", path, err)
			}
			if serr := c.sleep(ctx, c.backoff(attempt)); serr != nil {
				return nil, fmt.Errorf("client: %s: %w", path, serr)
			}
			continue
		}
		res.Status = status
		res.Body = respBody
		res.Replayed = res.Replayed || replayed
		switch {
		case status >= 500 && status != http.StatusServiceUnavailable:
			c.recordFailure()
			if idemKey == "" {
				return res, nil // the 5xx is the answer; retrying could double-spend
			}
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			c.recordSuccess() // the server is alive and answering; only real failures trip the breaker
		default:
			c.recordSuccess()
			return res, nil
		}
		if attempt == c.cfg.MaxAttempts-1 {
			return res, nil
		}
		// Honor the server's Retry-After wish, capped at MaxRetryAfter,
		// with the jittered exponential backoff as the floor.
		d := c.backoff(attempt)
		if retryAfter > c.cfg.MaxRetryAfter {
			retryAfter = c.cfg.MaxRetryAfter
		}
		if retryAfter > d {
			d = retryAfter
		}
		if serr := c.sleep(ctx, d); serr != nil {
			return res, nil // deadline hit mid-backoff; the last response stands
		}
	}
	return res, nil
}

// once sends a single HTTP attempt.
func (c *Client) once(ctx context.Context, path string, body []byte, idemKey string, header http.Header) (status int, respBody []byte, retryAfter time.Duration, replayed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return 0, nil, 0, false, err
	}
	defer resp.Body.Close() //dplint:ignore errdrop read-only response body
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, 0, false, err
	}
	ra, _ := RetryAfterSeconds(resp.Header.Get("Retry-After"))
	return resp.StatusCode, b, ra, resp.Header.Get("Idempotency-Replayed") == "true", nil
}

// backoff draws the full-jittered exponential backoff for attempt n:
// uniform in (0, min(MaxBackoff, BaseBackoff·2ⁿ)].
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	f := c.g.Float64()
	c.mu.Unlock()
	return time.Duration(f * float64(d))
}

// sleep waits d or until ctx is done.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// breakerOpen reports whether the circuit is open and, if so, the
// remaining cooldown.
func (c *Client) breakerOpen() (time.Duration, bool) {
	if c.cfg.BreakerThreshold < 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openedAt.IsZero() {
		return 0, false
	}
	left := c.cfg.BreakerCooldown - time.Since(c.openedAt)
	if left > 0 {
		return left, true
	}
	// Cooldown elapsed: half-open — let the next attempt probe.
	c.openedAt = time.Time{}
	c.failures = 0
	return 0, false
}

// recordFailure counts a consecutive failure and opens the breaker at
// the threshold.
func (c *Client) recordFailure() {
	if c.cfg.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures++
	if c.failures >= c.cfg.BreakerThreshold && c.openedAt.IsZero() {
		c.openedAt = time.Now()
	}
}

// recordSuccess resets the consecutive-failure count.
func (c *Client) recordSuccess() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = 0
}

// RetryAfterSeconds parses a Retry-After header value in seconds form
// (the only form dplearn-serve emits), for callers that hold the raw
// response.
func RetryAfterSeconds(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, false
	}
	return time.Duration(n) * time.Second, true
}
