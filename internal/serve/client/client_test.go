package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testCfg(url string) Config {
	return Config{
		BaseURL:       url,
		MaxAttempts:   4,
		Deadline:      5 * time.Second,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		MaxRetryAfter: 5 * time.Millisecond,
		Seed:          1,
	}
}

func TestRetriesRefusalsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"busy"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	c := New(testCfg(srv.URL))
	res, err := c.Post(context.Background(), "/v1/fit", map[string]any{"tenant": "a"}, "")
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Status != 200 || res.Attempts != 3 || res.Retries() != 2 {
		t.Fatalf("res=%+v, want 200 after 3 attempts", res)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestNo5xxRetryWithoutKey(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"boom"}`))
	}))
	defer srv.Close()
	c := New(testCfg(srv.URL))
	res, err := c.Post(context.Background(), "/v1/fit", nil, "")
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Status != 500 || res.Attempts != 1 {
		t.Fatalf("res=%+v, want one un-retried 500 (keyless 5xx retry risks a double charge)", res)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

func TestRetries5xxWithKey(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Idempotency-Key") != "k1" {
			t.Errorf("missing idempotency key")
		}
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Idempotency-Replayed", "true")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	c := New(testCfg(srv.URL))
	res, err := c.Post(context.Background(), "/v1/fit", nil, "k1")
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Status != 200 || res.Attempts != 2 || !res.Replayed {
		t.Fatalf("res=%+v, want a replayed 200 on attempt 2", res)
	}
}

func TestBreakerOpensOnConsecutive5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	cfg := testCfg(srv.URL)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Minute
	c := New(cfg)
	// Keyed requests retry 5xx, so one Post burns through the threshold.
	if _, err := c.Post(context.Background(), "/v1/fit", nil, "k"); err != nil &&
		!errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("first post: %v", err)
	}
	for i := 0; i < 3; i++ {
		c.Post(context.Background(), "/v1/fit", nil, "k")
	}
	_, err := c.Post(context.Background(), "/v1/fit", nil, "k")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err=%v, want ErrCircuitOpen", err)
	}
}

func TestBreakerHalfOpensAfterCooldown(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	cfg := testCfg(srv.URL)
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 10 * time.Millisecond
	c := New(cfg)
	c.Post(context.Background(), "/v1/fit", nil, "k") // opens the breaker
	if _, err := c.Post(context.Background(), "/v1/fit", nil, "k"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not open: %v", err)
	}
	fail.Store(false)
	time.Sleep(15 * time.Millisecond)
	res, err := c.Post(context.Background(), "/v1/fit", nil, "k")
	if err != nil || res.Status != 200 {
		t.Fatalf("half-open probe failed: res=%+v err=%v", res, err)
	}
}

func TestDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Outlast the client deadline, but return so Close can finish.
		select {
		case <-r.Context().Done():
		case <-time.After(500 * time.Millisecond):
		}
	}))
	defer srv.Close()
	cfg := testCfg(srv.URL)
	cfg.Deadline = 20 * time.Millisecond
	c := New(cfg)
	start := time.Now()
	_, err := c.Post(context.Background(), "/v1/fit", nil, "")
	if err == nil {
		t.Fatal("want deadline error")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline not enforced: took %v", el)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	if d, ok := RetryAfterSeconds("2"); !ok || d != 2*time.Second {
		t.Fatalf("parse 2: %v %v", d, ok)
	}
	if _, ok := RetryAfterSeconds(""); ok {
		t.Fatal("empty must not parse")
	}
	if _, ok := RetryAfterSeconds("soon"); ok {
		t.Fatal("non-numeric must not parse")
	}
}
