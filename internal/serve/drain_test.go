package serve

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/mechanism"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGracefulDrain parks a request inside the spending window (its
// reservation held), begins the drain, and demands: new /v1 requests
// and health checks answer 503 + Retry-After, while the parked request
// runs to a committed 200 — drain never abandons a held reservation.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 5}}},
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	parked := false
	s.testHookInFlight = func(endpoint string) {
		if endpoint == "summary" && !parked {
			parked = true
			close(entered)
			<-release
		}
	}
	data := testData(41, 16, 2)
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/summary", SummaryRequest{
			Tenant: "solo", Seed: 1, Feature: 0, Lo: -1, Hi: 1,
			Quantiles: []float64{0.5}, Epsilon: 0.3, Data: data,
		})
		done <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never reached the spending window")
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	resp, body := postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 2, Data: data})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fit during drain: HTTP %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After header")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: HTTP %d, want 503", hresp.StatusCode)
	}

	close(release)
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("parked request finished with HTTP %d, want 200 (drain must let it commit)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked request never finished")
	}
	tn, _ := s.Tenants().Get("solo")
	if tn.Acct.Count() != 1 {
		t.Errorf("parked request committed %d record(s), want 1", tn.Acct.Count())
	}
	checkBooks(t, tn)
}

// drainScript replays the fixed request sequence the metrics golden is
// pinned to.
func drainScript(t *testing.T, s *Server, ts string) {
	t.Helper()
	data := testData(42, 16, 2)
	steps := []struct {
		path string
		body any
		want int
	}{
		{"/v1/fit", FitRequest{Tenant: "alpha", Seed: 1, Data: data}, http.StatusOK},
		{"/v1/summary", SummaryRequest{Tenant: "alpha", Seed: 2, Feature: 0, Lo: -1, Hi: 1,
			Quantiles: []float64{0.5}, Epsilon: 0.05, Data: data}, http.StatusOK},
		{"/v1/density", DensityRequest{Tenant: "beta", Seed: 3, Feature: 0, Lo: -1, Hi: 1,
			Epsilon: 0.05, Bins: 8, Data: data}, http.StatusOK},
		{"/v1/select", SelectRequest{Tenant: "beta", Seed: 4, Epsilon: 0.05,
			Candidates: []CandidateJSON{{Name: "a", Theta: []float64{1, 0}}, {Name: "b", Theta: []float64{0, 1}}},
			Data:       data}, http.StatusOK},
		{"/v1/certify", CertifyRequest{Tenant: "alpha", Data: data}, http.StatusOK},
		{"/v1/fit", FitRequest{Tenant: "beta", Seed: 5, Data: data}, http.StatusOK},
		// beta's second 0.4-fit busts its 0.6 budget: a deterministic 429.
		{"/v1/fit", FitRequest{Tenant: "beta", Seed: 6, Data: data}, http.StatusTooManyRequests},
	}
	for i, st := range steps {
		resp, body := postJSON(t, ts+st.path, st.body)
		if resp.StatusCode != st.want {
			t.Fatalf("script step %d (%s): HTTP %d, want %d: %s", i, st.path, resp.StatusCode, st.want, body)
		}
	}
	// Drain and take one refused request so the golden pins the 503 path
	// too.
	s.BeginDrain()
	resp, _ := postJSON(t, ts+"/v1/fit", FitRequest{Tenant: "alpha", Seed: 7, Data: data})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain fit: HTTP %d, want 503", resp.StatusCode)
	}
}

// scrapeServeMetrics returns the /metrics lines belonging to the
// dplearn_serve_ families. The filter is the point: the shared registry
// also holds parallel-engine counters whose worker-chunk series
// legitimately vary with the worker count, while every dplearn_serve_
// series must be a pure function of the request history.
func scrapeServeMetrics(t *testing.T, ts string) string {
	t.Helper()
	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var keep []string
	for _, line := range strings.Split(string(b), "\n") {
		if strings.Contains(line, "dplearn_serve_") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n") + "\n"
}

// TestMetricsGoldenAcrossWorkers replays the fixed script at Workers=1
// and Workers=8 and demands byte-identical dplearn_serve_ metrics —
// spend gauges, request counters, and tick histograms are deterministic
// functions of the request history, not of the parallel fan-out — then
// pins them to a golden file.
func TestMetricsGoldenAcrossWorkers(t *testing.T) {
	outputs := map[int]string{}
	for _, workers := range []int{1, 8} {
		s, ts := newTestService(t, Config{
			Tenants: []TenantConfig{
				{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 5}},
				{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 0.6}},
			},
			Learner: LearnerSpec{Epsilon: 0.4},
			Workers: workers,
		})
		drainScript(t, s, ts.URL)
		outputs[workers] = scrapeServeMetrics(t, ts.URL)
	}
	if outputs[1] != outputs[8] {
		t.Fatalf("dplearn_serve_ metrics differ between Workers=1 and Workers=8:\n--- w=1 ---\n%s--- w=8 ---\n%s",
			outputs[1], outputs[8])
	}
	golden := filepath.Join("testdata", "metrics_serve.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(outputs[1]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if outputs[1] != string(want) {
		t.Errorf("metrics drifted from golden (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s",
			outputs[1], want)
	}
}
