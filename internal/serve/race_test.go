package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mechanism"
	"repro/internal/obs"
)

// TestConcurrentSpendExact hammers one tenant's serve-layer two-phase
// path (summary) from 32 goroutines and then demands exact books: the
// accountant's composed spend must equal — bit for bit — the canonical
// composition of the quoted guarantees of exactly the 2xx responses,
// with zero reservations left behind. Run under -race this is the
// service's concurrency proof.
func TestConcurrentSpendExact(t *testing.T) {
	const (
		goroutines = 32
		perG       = 6
		quote      = 0.11 // deliberately not a power of two
	)
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "hammer", Budget: mechanism.Guarantee{Epsilon: 1000}}},
	})
	data := testData(21, 16, 2)
	var ok, rejected, other atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/summary", SummaryRequest{
					Tenant: "hammer", Seed: int64(g*1000 + i), Feature: 0, Lo: -1, Hi: 1,
					Quantiles: []float64{0.5}, Epsilon: quote, Data: data,
				})
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					other.Add(1)
					t.Errorf("HTTP %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := other.Load(); n != 0 {
		t.Fatalf("%d unexpected responses", n)
	}
	// The 1000-ε budget admits all 192 quotes of 0.11.
	if got := ok.Load(); got != goroutines*perG {
		t.Fatalf("got %d successes and %d rejections, want all %d admitted",
			got, rejected.Load(), goroutines*perG)
	}
	tn, _ := s.Tenants().Get("hammer")
	assertSpendIsQuotes(t, tn, int(ok.Load()), quote)
}

// TestConcurrentSpendContended repeats the hammer against a budget that
// admits only some of the herd, so Reserve races against real
// contention: however the 429s land, the books must still compose to
// exactly the admitted quotes.
func TestConcurrentSpendContended(t *testing.T) {
	const (
		goroutines = 32
		perG       = 4
		quote      = 0.11
	)
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "hammer", Budget: mechanism.Guarantee{Epsilon: 5}}},
	})
	data := testData(22, 16, 2)
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/summary", SummaryRequest{
					Tenant: "hammer", Seed: int64(g*1000 + i), Feature: 0, Lo: -1, Hi: 1,
					Quantiles: []float64{0.5}, Epsilon: quote, Data: data,
				})
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("HTTP %d: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	wg.Wait()
	if ok.Load()+rejected.Load() != goroutines*perG {
		t.Fatalf("accounted %d responses, want %d", ok.Load()+rejected.Load(), goroutines*perG)
	}
	// A 5-ε budget admits at most 45 quotes of 0.11; contention may admit
	// fewer, never more.
	if got := ok.Load(); got == 0 || got > 45 {
		t.Fatalf("admitted %d quotes of 0.11 against ε=5, want 1..45", got)
	}
	if rejected.Load() == 0 {
		t.Fatal("contended run produced no 429s; the budget did not bind")
	}
	tn, _ := s.Tenants().Get("hammer")
	assertSpendIsQuotes(t, tn, int(ok.Load()), quote)
}

// assertSpendIsQuotes demands the tenant's books equal exactly n quoted
// guarantees: record count, bit-exact canonical composition, no leaked
// reservations, and a clean ledger audit.
func assertSpendIsQuotes(t *testing.T, tn *Tenant, n int, quote float64) {
	t.Helper()
	if got := tn.Acct.Count(); got != n {
		t.Errorf("accountant has %d record(s), want %d (one per 2xx)", got, n)
	}
	if r := tn.Acct.Reserved(); r != 0 {
		t.Errorf("%d reservation(s) leaked", r)
	}
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = quote
	}
	wantE, wantD := obs.ComposeBasic(eps, make([]float64, n))
	g := tn.Acct.BasicComposition()
	//dplint:ignore floateq the spend must equal the composed quotes bit for bit
	if g.Epsilon != wantE || g.Delta != wantD {
		t.Errorf("spend composes to (%.17g, %.17g), %d quotes compose to (%.17g, %.17g)",
			g.Epsilon, g.Delta, n, wantE, wantD)
	}
	checkBooks(t, tn)
}
