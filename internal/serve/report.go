package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// LoadStats aggregates one load-generation run against a live service.
// Latencies are wall-clock milliseconds (the one place the repo
// measures real time — load benchmarks characterize the machine, not
// the algorithm, so they are exempt from the LogicalClock determinism
// contract).
type LoadStats struct {
	// Requests is the total number of requests issued.
	Requests int `json:"requests"`
	// OK counts 2xx responses.
	OK int `json:"ok"`
	// Rejected counts 429 admission rejections.
	Rejected int `json:"rejected"`
	// Degraded counts 2xx fits answered by a degraded release.
	Degraded int `json:"degraded"`
	// Errors counts every other non-2xx response.
	Errors int `json:"errors"`
	// Retries counts extra HTTP attempts beyond each request's first
	// (backoff on 429/503 honoring Retry-After, keyed retries of 5xx).
	Retries int `json:"retries"`
	// Replayed counts 2xx responses served from the server's durable
	// idempotency store rather than a fresh release — retries that were
	// answered without spending ε a second time.
	Replayed int `json:"replayed"`
	// ElapsedSeconds is the wall-clock span of the run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// QPS is Requests / ElapsedSeconds.
	QPS float64 `json:"qps"`
	// GoodputQPS is fresh successful releases per second: (OK − Replayed)
	// / ElapsedSeconds. Under retry pressure QPS counts traffic; goodput
	// counts work the budget actually paid for.
	GoodputQPS float64 `json:"goodput_qps"`
	// P50/P95/P99 are latency percentiles in milliseconds.
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// P95TraceID/P99TraceID name the trace ids of the requests sitting
	// exactly at the nearest-rank p95/p99 latencies, when the load
	// generator injected traceparent headers — the join key from a tail
	// percentile in this artifact to its span waterfall in the trace
	// stream (dplearn-trace -trace <id>).
	P95TraceID string `json:"p95_trace_id,omitempty"`
	P99TraceID string `json:"p99_trace_id,omitempty"`
	// AdmissionRejectRate is Rejected / Requests.
	AdmissionRejectRate float64 `json:"admission_reject_rate"`
	// ByTenant breaks the mix down per tenant, sorted by ID.
	ByTenant []TenantLoadStats `json:"by_tenant,omitempty"`
	// ByEndpoint breaks the mix down per endpoint, sorted by name.
	ByEndpoint []EndpointLoadStats `json:"by_endpoint,omitempty"`
	// CrossCheckOK reports that every tenant's ledger audit passed at the
	// end of the run.
	CrossCheckOK bool `json:"crosscheck_ok"`
}

// TenantLoadStats is the per-tenant slice of a run.
type TenantLoadStats struct {
	Tenant   string `json:"tenant"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Rejected int    `json:"rejected"`
	Errors   int    `json:"errors"`
}

// EndpointLoadStats is the per-endpoint slice of a run.
type EndpointLoadStats struct {
	Endpoint string `json:"endpoint"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Rejected int    `json:"rejected"`
	Errors   int    `json:"errors"`
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of samples by
// the nearest-rank method, NaN on empty input. Sorts a copy.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 || math.IsNaN(p) || p <= 0 || p > 100 {
		return math.NaN()
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// LoadReport is the BENCH_serve.json artifact envelope: run identity
// and configuration beside the measured stats, flattened so downstream
// tooling finds qps/p50_ms/p95_ms/p99_ms at the top of "results".
type LoadReport struct {
	Name   string         `json:"name"`
	Config map[string]any `json:"config,omitempty"`
	// Results embeds LoadStats (qps, p50_ms, p95_ms, p99_ms,
	// admission_reject_rate, ...).
	Results *LoadStats `json:"results"`
}

// WriteLoadReport writes the run as an indented, diffable BENCH_*.json
// artifact.
func WriteLoadReport(path, name string, config map[string]any, stats *LoadStats) error {
	b, err := json.MarshalIndent(LoadReport{Name: name, Config: config, Results: stats}, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: bench artifact: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("serve: bench artifact dir: %w", err)
		}
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
