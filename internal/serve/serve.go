// Package serve is the multi-tenant DP release service layer: it
// exposes the facade (Fit / Certify / PrivateSelect / density and
// summary releases) as JSON-over-HTTP endpoints to many concurrent
// tenants, each with a dedicated Accountant enforcing a hard (ε, δ)
// budget.
//
// The correctness surface is per-tenant budget accounting under
// concurrent load: every ε-spending request rides the accountant's
// two-phase Reserve/Commit/Release protocol, so admission control is
// decided on the canonical composition of spends plus outstanding
// reservations (no TOCTOU window), a request the budget cannot admit is
// rejected with 429 + Retry-After (or degraded per the request's
// refuse/fallback/widen policy), and a request that fails mid-release —
// error, cancellation, or panic — releases its reservation instead of
// committing, so the books never hold a half-spend. Each tenant's
// NDJSON privacy ledger mirrors its accountant spend-for-spend and must
// cross-check bit-identically (the dynamic analogue of acctlint).
//
// Isolation between tenants is structural: separate accountants,
// ledgers, learners, and fallback caches. One tenant exhausting its
// budget changes nothing for another.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// maxBody bounds a request payload (datasets travel in the body).
const maxBody = 8 << 20

// requestTickBuckets are the latency-histogram bounds in logical clock
// ticks (deterministic under LogicalClock; see the obs determinism
// contract). The low end is deliberately fine-grained: a spending
// request's span tree costs tens of clock reads, so the ≥16-tick slots
// form the exemplar-carrying tail (Histogram.tailBucket) where slow
// traced requests pin their trace ids.
var requestTickBuckets = []float64{1, 4, 8, 16, 64, 256, 1024}

// Config assembles one service instance.
type Config struct {
	// Tenants declares the isolation domains (at least one).
	Tenants []TenantConfig
	// Learner shapes every tenant's private learner (zero values take
	// the LearnerSpec defaults).
	Learner LearnerSpec
	// Observer supplies the metrics registry and clock shared by all
	// tenants; nil disables metrics and timing (still fully functional).
	Observer *obs.Observer
	// Faults optionally injects deterministic failures into in-flight
	// requests (chaos battery only; nil in production). Faults are keyed
	// by the request's Seed, so a chaos run replays exactly.
	Faults *faults.Schedule
	// Workers caps the parallel fan-out of learner hot paths (0 = all
	// CPUs). Results are bit-identical for every setting.
	Workers int
	// RetryAfterSeconds is the Retry-After hint on 503 responses and the
	// floor of the burn-rate-derived hint on 429s (default 1).
	RetryAfterSeconds int
	// Pprof mounts /debug/pprof on the service mux (opt-in, as in the
	// CLIs).
	Pprof bool
	// AccessLog optionally receives one NDJSON "access" line per /v1
	// request: trace id, tenant, endpoint, status, quoted vs. spent ε,
	// reservation outcome, and duration. Nil disables access logging.
	AccessLog *obs.AccessLog
	// WALDir, when set, attaches a write-ahead privacy ledger per tenant
	// under this directory (<id>.wal): budget state becomes
	// crash-recoverable (New replays surviving logs and rebuilds each
	// accountant bit-identically before serving) and idempotency-keyed
	// responses replay across restarts. Empty disables durability; the
	// request flow is identical either way.
	WALDir string
}

// Server is one live service instance. Safe for concurrent use; build
// with New.
type Server struct {
	cfg  Config
	spec LearnerSpec
	reg  *Registry
	obs  *obs.Observer
	mux  *http.ServeMux

	draining atomic.Bool

	inflight *obs.Gauge
	panics   *obs.Counter

	// spends tallies committed ε per in-flight trace id so the access
	// log's spent_epsilon is the exact sum the accountant composed.
	spends *traceSpends
	// charges tallies the exact committed guarantees per in-flight
	// durable request, so a WAL commit record carries precisely what the
	// accountant composed (see chargeSpends).
	charges *chargeSpends
	// recovery holds the per-tenant WAL recovery summaries from boot.
	recovery []RecoveryReport
	// startWall anchors the wall-clock burn-rate estimate behind the
	// 429 Retry-After hint. Wall time never reaches goldened surfaces
	// (the hint is a response header, like the loadgen's latencies).
	startWall time.Time

	// testHookInFlight, when set (tests only), runs inside a spending
	// handler while its reservation is held — the drain test parks a
	// request here.
	testHookInFlight func(endpoint string)
}

// parallelOptions builds the engine options threaded into every learner
// hot path.
func parallelOptions(workers int, o *obs.Observer) parallel.Options {
	return parallel.Options{Workers: workers, Obs: o}
}

// New validates the config and builds the service.
func New(cfg Config) (*Server, error) {
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	spec := cfg.Learner.withDefaults()
	spends := newTraceSpends()
	charges := newChargeSpends()
	reg, err := newRegistry(cfg.Tenants, spec, cfg.Observer, cfg.Workers, spends, charges)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, spec: spec, reg: reg, obs: cfg.Observer,
		spends: spends, charges: charges, startWall: time.Now()}
	if cfg.WALDir != "" {
		// Recovery before traffic: replay each tenant's surviving WAL,
		// rebuild its accountant bit-identically (verified against
		// ComposeBasic), settle stranded reserves, restore idempotency
		// outcomes. A tenant whose books cannot be audited fails the boot.
		for _, t := range reg.Tenants() {
			rep, err := s.attachWAL(t, cfg.WALDir)
			if err != nil {
				return nil, err
			}
			s.recovery = append(s.recovery, rep)
			t.refreshSpent()
		}
	}
	mreg := s.obs.Reg()
	s.inflight = mreg.Gauge("dplearn_serve_inflight_requests",
		"requests currently being served")
	s.panics = mreg.Counter("dplearn_serve_panics_total",
		"handler panics recovered into 500 responses")
	s.routes()
	return s, nil
}

// Tenants exposes the tenant registry (the CLI audits it at drain).
func (s *Server) Tenants() *Registry { return s.reg }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the service into draining: every subsequent /v1
// request is refused with 503 + Retry-After while in-flight requests
// run to completion (commit or release — never half-spend). It also
// refreshes the per-tenant spend gauges so the final /metrics scrape
// reflects the canonical composition.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	for _, t := range s.reg.Tenants() {
		t.refreshSpent()
	}
}

// Draining reports whether BeginDrain has run.
func (s *Server) Draining() bool { return s.draining.Load() }

// routes assembles the mux.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fit", s.instrument("fit", http.MethodPost, s.handleFit))
	mux.HandleFunc("/v1/certify", s.instrument("certify", http.MethodPost, s.handleCertify))
	mux.HandleFunc("/v1/select", s.instrument("select", http.MethodPost, s.handleSelect))
	mux.HandleFunc("/v1/density", s.instrument("density", http.MethodPost, s.handleDensity))
	mux.HandleFunc("/v1/summary", s.instrument("summary", http.MethodPost, s.handleSummary))
	mux.HandleFunc("/v1/budget", s.instrument("budget", http.MethodGet, s.handleBudget))
	mux.HandleFunc("/v1/tenants", s.instrument("tenants", http.MethodGet, s.handleTenants))
	mux.HandleFunc("/v1/crosscheck", s.instrument("crosscheck", http.MethodGet, s.handleCrossCheck))
	mux.HandleFunc("/healthz", s.handleHealthz)
	if mreg := s.obs.Reg(); mreg != nil {
		omux := obs.NewServeMux(mreg, s.cfg.Pprof)
		mux.Handle("/metrics", omux)
		mux.Handle("/debug/", omux)
	}
	s.mux = mux
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code    int
	written bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.written {
		sr.code = code
		sr.written = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.written {
		sr.code = http.StatusOK
		sr.written = true
	}
	return sr.ResponseWriter.Write(b)
}

// instrument wraps a handler with the service middleware: the draining
// gate (503 + Retry-After), method enforcement, panic recovery (a
// panicking release's deferred reservation cleanup runs during the
// unwind, so recovery only converts the unwound stack into a 500),
// request metrics (count by endpoint/code, in-flight gauge, latency in
// logical ticks), and request-scoped tracing — a W3C traceparent is
// adopted (or the request stays untraced), a request span is opened and
// carried through the context into the facade, the mechanisms, and the
// parallel engine's chunks, and one access-log line joins the request
// to the ε it spent.
//
// Determinism: the span is created whether or not a tracer is wired
// (silent spans consume identical clock reads), and exemplar attachment
// is keyed on the *request's* traceparent, never on server wiring — so
// every dplearn_serve_ metric stays a pure function of the request
// history, byte-identical with tracing on and off.
func (s *Server) instrument(endpoint, method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		tc, _ := obs.ParseTraceparent(r.Header.Get("traceparent")) // malformed → untraced
		sp := s.obs.RequestSpan(endpoint, tc)
		sp.SetAttr("endpoint", endpoint)
		ai := &accessInfo{}
		ctx := withAccessInfo(obs.ContextWithSpan(r.Context(), sp), ai)
		r = r.WithContext(ctx)
		if tc.Valid() {
			s.spends.begin(tc.TraceID())
		}
		start := s.obs.Now()
		s.inflight.Add(1)
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				if !rec.written {
					s.writeJSON(rec, http.StatusInternalServerError,
						ErrorResponse{Error: fmt.Sprintf("internal panic: %v", p)})
				}
			}
			s.inflight.Add(-1)
			dur := s.obs.Now() - start
			sp.SetAttr("status", rec.code)
			sp.End()
			if eps, ok := s.spends.take(tc.TraceID()); ok {
				// The exact committed sum beats any handler-side estimate.
				ai.spent = eps
			}
			if ai.outcome == "" {
				switch {
				case rec.code == http.StatusTooManyRequests || rec.code == http.StatusServiceUnavailable:
					ai.outcome = "refused"
				case rec.code >= 200 && rec.code < 300:
					ai.outcome = "free"
				default:
					ai.outcome = "error"
				}
			}
			mreg := s.obs.Reg()
			mreg.Counter("dplearn_serve_requests_total",
				"requests served by endpoint and status code",
				"endpoint", endpoint, "code", strconv.Itoa(rec.code)).Inc()
			mreg.Histogram("dplearn_serve_request_ticks",
				"request duration in logical clock ticks", requestTickBuckets,
				"endpoint", endpoint).ObserveExemplar(float64(dur), tc.TraceID())
			s.cfg.AccessLog.Record(obs.AccessRecord{
				Trace:          tc.TraceID(),
				Tenant:         ai.tenant,
				Endpoint:       endpoint,
				Status:         rec.code,
				QuotedEpsilon:  ai.quoted,
				SpentEpsilon:   ai.spent,
				Outcome:        ai.outcome,
				IdempotencyKey: ai.idemKey,
				Start:          start,
				Duration:       dur,
			})
		}()
		if s.draining.Load() {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
			s.writeJSON(rec, http.StatusServiceUnavailable,
				ErrorResponse{Error: "serve: draining, not accepting new requests"})
			return
		}
		if r.Method != method {
			s.writeJSON(rec, http.StatusMethodNotAllowed,
				ErrorResponse{Error: fmt.Sprintf("serve: %s requires %s", r.URL.Path, method)})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		h(rec, r)
	}
}

// writeJSON marshals v and writes it with the given status. The body is
// rendered before the header so a marshal failure can still become a
// clean 500.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"serve: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The client went away mid-response; there is no one to tell.
		return
	}
}

// status maps a handler error to its HTTP status.
func status(err error) int {
	switch {
	case errors.Is(err, mechanism.ErrBudgetExhausted):
		return http.StatusTooManyRequests
	case errors.Is(err, errUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, errDuplicateKey):
		return http.StatusConflict
	case errors.Is(err, errBadRequest),
		errors.Is(err, core.ErrBadConfig),
		errors.Is(err, core.ErrNonFiniteInput):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders err with its mapped status; 429 and 503 carry the
// Retry-After hint, and a budget rejection is counted per tenant. The
// 429 hint is derived from the tenant's measured wall-clock burn rate
// (see retryAfter) instead of the constant the 503 drain path uses.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, tenantID string, err error) {
	code := status(err)
	switch code {
	case http.StatusTooManyRequests:
		quoted := 0.0
		if ai := accessFrom(r.Context()); ai != nil {
			quoted = ai.quoted
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(tenantID, quoted)))
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	}
	if code == http.StatusTooManyRequests && tenantID != "" {
		s.obs.Reg().Counter("dplearn_serve_admission_rejects_total",
			"requests rejected by budget admission control", "tenant", tenantID).Inc()
	}
	s.writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// retryAfter estimates a 429 Retry-After hint from the tenant's measured
// burn rate: the wall-clock ε/second the tenant has actually committed
// since boot. The hint is the time the rejected request's quoted ε
// represents at that velocity — "the pace at which this budget turns
// over" — clamped to [RetryAfterSeconds, 60]. Budgets never replenish,
// so the hint is advisory: it matters when outstanding reservations may
// yet release, and it backs off harder the hotter the tenant runs. Wall
// time is confined to this response header (never a goldened surface),
// exactly like the loadgen's latency percentiles.
func (s *Server) retryAfter(tenantID string, quotedEps float64) int {
	base := s.cfg.RetryAfterSeconds
	t, ok := s.reg.Get(tenantID)
	if !ok {
		return base
	}
	elapsed := time.Since(s.startWall).Seconds()
	if elapsed <= 0 || quotedEps <= 0 {
		return base
	}
	rate := t.Acct.BasicComposition().Epsilon / elapsed
	if rate <= 0 {
		return base
	}
	hint := int(math.Ceil(quotedEps / rate))
	if hint < base {
		hint = base
	}
	if hint > 60 {
		hint = 60
	}
	return hint
}

// decode parses the JSON body into v.
func decode(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// tenant resolves the tenant or fails with errUnknownTenant.
func (s *Server) tenant(id string) (*Tenant, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: request names no tenant", errBadRequest)
	}
	t, ok := s.reg.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", errUnknownTenant, id)
	}
	return t, nil
}

// injectFault fires the chaos schedule for this request key: a
// WorkerPanic unwinds the handler (exercising reservation release on
// panic paths), a CheckpointWrite becomes a 500-mapped error.
func (s *Server) injectFault(key int) error {
	sched := s.cfg.Faults
	if sched == nil {
		return nil
	}
	sched.Panic(faults.WorkerPanic, key)
	if err := sched.Err(faults.CheckpointWrite, key); err != nil {
		return fmt.Errorf("serve: ledger checkpoint write failed: %w", err)
	}
	return nil
}

// spendQuoted runs one release under the two-phase protocol with the
// quoted price g: Reserve decides admission against the tenant's budget
// (composed with every spend and outstanding hold), the deferred
// Release frees the hold on every error and panic path, and Commit
// charges exactly the quoted guarantee once the release succeeded. The
// chaos hook fires while the reservation is held, which is precisely
// the window the battery must prove never half-spends.
//
// The release runs under a child span of the request span carried by
// ctx ("<endpoint>.release"), and the commit is stamped with the span
// and trace ids, so the resulting ledger record joins back to the
// request that paid for it.
func (s *Server) spendQuoted(ctx context.Context, t *Tenant, endpoint string, g mechanism.Guarantee, meta mechanism.SpendMeta, key int, release func(ctx context.Context) error) error {
	res, err := t.Acct.Reserve(g)
	if err != nil {
		return err
	}
	defer res.Release()
	if s.testHookInFlight != nil {
		s.testHookInFlight(endpoint)
	}
	if err := s.injectFault(key); err != nil {
		return err
	}
	sp := obs.SpanFromContext(ctx).Child(endpoint + ".release")
	defer sp.End()
	start := s.obs.Now()
	if err := release(obs.ContextWithSpan(ctx, sp)); err != nil {
		return err
	}
	meta.Duration = s.obs.Now() - start
	meta.Span = sp.ID()
	meta.Trace = sp.TraceID()
	meta.Charge = mechanism.ChargeScopeFrom(ctx)
	res.Commit(meta)
	ai := accessFrom(ctx)
	ai.setSpent(g.Epsilon)
	ai.setOutcome("committed")
	t.refreshSpent()
	return nil
}

// handleFit privately fits the tenant's learner on the posted data.
// Admission rides the reservation inside core.FitPolicyCtx; the
// request's degrade policy (or the tenant default) decides what an
// ErrBudgetExhausted becomes: 429, a free cached re-release, or a
// widened posterior.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, r, "", err)
		return
	}
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, r, req.Tenant, err)
		return
	}
	ai := accessFrom(r.Context())
	ai.setTenant(t.ID)
	ai.setQuoted(s.spec.Epsilon)
	d, err := req.Data.dataset()
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	if d.Dim() != s.spec.Dim {
		s.writeError(w, r, t.ID, fmt.Errorf("%w: data has %d features, the predictor space has %d",
			errBadRequest, d.Dim(), s.spec.Dim))
		return
	}
	policy := t.Degrade
	if req.Degrade != "" {
		policy, err = core.ParseDegradePolicy(req.Degrade)
		if err != nil {
			s.writeError(w, r, t.ID, fmt.Errorf("%w: %v", errBadRequest, err))
			return
		}
	}
	s.durable(w, r, t, "fit", req.Seed, s.spec.Epsilon, func(ctx context.Context) (any, error) {
		if s.testHookInFlight != nil {
			s.testHookInFlight("fit")
		}
		if err := s.injectFault(int(req.Seed)); err != nil {
			return nil, err
		}
		fit, err := t.Learner.FitPolicyCtx(ctx, d, rng.New(req.Seed), policy)
		if err != nil {
			return nil, err
		}
		if fit.Degraded {
			// A degraded fit released without a fresh charge (cached
			// re-release or widened posterior); the spends tally stays the
			// authority for traced requests.
			ai.setOutcome("degraded")
		} else {
			ai.setSpent(s.spec.Epsilon)
			ai.setOutcome("committed")
		}
		t.refreshSpent()
		return FitResponse{
			Theta:       fit.Theta,
			Index:       fit.Index,
			Degraded:    fit.Degraded,
			Policy:      fit.Policy.String(),
			Certificate: certificateJSON(fit.Certificate),
		}, nil
	})
}

// handleCertify evaluates the certificates without releasing; no ε is
// spent, so budget exhaustion can never refuse it.
func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	var req CertifyRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, r, "", err)
		return
	}
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, r, req.Tenant, err)
		return
	}
	accessFrom(r.Context()).setTenant(t.ID)
	d, err := req.Data.dataset()
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	if d.Dim() != s.spec.Dim {
		s.writeError(w, r, t.ID, fmt.Errorf("%w: data has %d features, the predictor space has %d",
			errBadRequest, d.Dim(), s.spec.Dim))
		return
	}
	cert, err := t.Learner.CertifyCtx(r.Context(), d)
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	s.writeJSON(w, http.StatusOK, CertifyResponse{Certificate: certificateJSON(cert)})
}

// handleSelect picks one posted candidate by the exponential mechanism
// scored on the posted validation data. The serve layer owns the
// two-phase spend here: PrivateSelect runs with a nil accountant and
// the quoted ε is reserved, then committed, on the tenant's books.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, r, "", err)
		return
	}
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, r, req.Tenant, err)
		return
	}
	ai := accessFrom(r.Context())
	ai.setTenant(t.ID)
	ai.setQuoted(req.Epsilon)
	if err := validEpsilon(req.Epsilon); err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	d, err := req.Data.dataset()
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	cands, err := candidates(req.Candidates, d.Dim())
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	s.durable(w, r, t, "select", req.Seed, req.Epsilon, func(ctx context.Context) (any, error) {
		var selected learn.Candidate
		loss := learn.ZeroOneLoss{}
		err := s.spendQuoted(ctx, t, "select", quotedGuarantee(req.Epsilon), mechanism.SpendMeta{
			Mechanism:   "select",
			Sensitivity: loss.Bound() / float64(d.Len()),
			Outcomes:    len(cands),
		}, int(req.Seed), func(context.Context) error {
			var rerr error
			selected, rerr = learn.PrivateSelect(cands, loss, d, req.Epsilon, nil, rng.New(req.Seed))
			return rerr
		})
		if err != nil {
			return nil, err
		}
		return SelectResponse{
			Name:    selected.Name,
			Theta:   selected.Theta,
			Epsilon: req.Epsilon,
		}, nil
	})
}

// handleDensity releases a private histogram density. Both flavors
// reserve and commit inside the facade against the tenant's accountant,
// so admission control is already two-phase; the handler only maps
// ErrBudgetExhausted to 429.
func (s *Server) handleDensity(w http.ResponseWriter, r *http.Request) {
	var req DensityRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, r, "", err)
		return
	}
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, r, req.Tenant, err)
		return
	}
	ai := accessFrom(r.Context())
	ai.setTenant(t.ID)
	ai.setQuoted(req.Epsilon)
	if err := validEpsilon(req.Epsilon); err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	d, err := req.Data.dataset()
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	if req.Feature < 0 || req.Feature >= d.Dim() {
		s.writeError(w, r, t.ID, fmt.Errorf("%w: feature %d outside [0, %d)", errBadRequest, req.Feature, d.Dim()))
		return
	}
	s.durable(w, r, t, "density", req.Seed, req.Epsilon, func(ctx context.Context) (any, error) {
		if s.testHookInFlight != nil {
			s.testHookInFlight("density")
		}
		if err := s.injectFault(int(req.Seed)); err != nil {
			return nil, err
		}
		g := rng.New(req.Seed)
		var est *core.DensityEstimate
		var err error
		switch req.Kind {
		case "", "laplace":
			bins := req.Bins
			if bins == 0 {
				bins = 16
			}
			est, err = core.PrivateHistogramDensityCtx(ctx, d, req.Feature, bins, req.Lo, req.Hi, req.Epsilon, t.Acct, g)
		case "gibbs":
			choices := req.BinChoices
			if len(choices) == 0 {
				choices = []int{4, 8, 16, 32}
			}
			clip := req.Clip
			if clip <= 0 {
				clip = 8
			}
			est, _, err = core.GibbsHistogramDensityCtx(ctx, d, req.Feature, choices, req.Lo, req.Hi, clip, req.Epsilon, t.Acct, g)
		default:
			err = fmt.Errorf("%w: unknown density kind %q (want laplace|gibbs)", errBadRequest, req.Kind)
		}
		if err != nil {
			return nil, err
		}
		ai.setSpent(req.Epsilon)
		ai.setOutcome("committed")
		t.refreshSpent()
		return DensityResponse{
			Lo:      est.Lo,
			Hi:      est.Hi,
			Bins:    len(est.Density),
			Density: est.Density,
			Epsilon: req.Epsilon,
		}, nil
	})
}

// handleSummary releases the ε-DP feature summary. ReleaseSummary
// splits its budget across the parts on an internal accountant; the
// serve layer reserves the quoted total against the tenant's budget
// before any noise is drawn and commits it only once the whole summary
// succeeded.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	var req SummaryRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, r, "", err)
		return
	}
	t, err := s.tenant(req.Tenant)
	if err != nil {
		s.writeError(w, r, req.Tenant, err)
		return
	}
	ai := accessFrom(r.Context())
	ai.setTenant(t.ID)
	ai.setQuoted(req.Epsilon)
	if err := validEpsilon(req.Epsilon); err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	d, err := req.Data.dataset()
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	if req.Feature < 0 || req.Feature >= d.Dim() {
		s.writeError(w, r, t.ID, fmt.Errorf("%w: feature %d outside [0, %d)", errBadRequest, req.Feature, d.Dim()))
		return
	}
	s.durable(w, r, t, "summary", req.Seed, req.Epsilon, func(ctx context.Context) (any, error) {
		var sum *core.PrivateSummary
		bins := req.Bins
		if bins == 0 {
			bins = 16
		}
		err := s.spendQuoted(ctx, t, "summary", quotedGuarantee(req.Epsilon), mechanism.SpendMeta{
			Mechanism: "summary",
			Outcomes:  bins,
		}, int(req.Seed), func(ctx context.Context) error {
			var rerr error
			sum, rerr = core.ReleaseSummaryCtx(ctx, d, core.SummaryConfig{
				Feature:   req.Feature,
				Lo:        req.Lo,
				Hi:        req.Hi,
				Bins:      req.Bins,
				Quantiles: req.Quantiles,
				Epsilon:   req.Epsilon,
			}, rng.New(req.Seed))
			return rerr
		})
		if err != nil {
			return nil, err
		}
		return summaryResponse(sum, req.Epsilon), nil
	})
}

// handleBudget reports one tenant's books (?tenant=<id>).
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.URL.Query().Get("tenant"))
	if err != nil {
		s.writeError(w, r, "", err)
		return
	}
	accessFrom(r.Context()).setTenant(t.ID)
	s.writeJSON(w, http.StatusOK, budgetStatus(t))
}

// handleTenants lists every tenant's books in declaration order.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	tenants := s.reg.Tenants()
	out := make([]BudgetStatus, len(tenants))
	for i, t := range tenants {
		out[i] = budgetStatus(t)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleCrossCheck audits every tenant's ledger against its accountant
// and refreshes the spend gauges; a mismatch is a 500 — the books are
// the service's contract.
func (s *Server) handleCrossCheck(w http.ResponseWriter, r *http.Request) {
	for _, t := range s.reg.Tenants() {
		t.refreshSpent()
	}
	if err := s.reg.CrossCheckAll(); err != nil {
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": len(s.reg.Tenants())})
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
