package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/rng"
)

// testObserver builds the deterministic observer every test server
// shares: logical clock, fresh registry.
func testObserver() *obs.Observer {
	return &obs.Observer{Metrics: obs.NewRegistry(), Clock: &obs.LogicalClock{}}
}

// newTestService builds a Server plus an httptest front end.
func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Observer == nil {
		cfg.Observer = testObserver()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// testData draws a deterministic labeled dataset.
func testData(seed int64, rows, dim int) DataJSON {
	g := rng.New(seed)
	d := DataJSON{X: make([][]float64, rows), Y: make([]float64, rows)}
	for i := range d.X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = g.Uniform(-1, 1)
		}
		d.X[i] = row
		if g.Bernoulli(0.5) {
			d.Y[i] = 1
		} else {
			d.Y[i] = -1
		}
	}
	return d
}

// postJSON posts body and returns the response with its decoded bytes.
func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

// checkBooks audits one tenant end to end: ledger-vs-accountant
// cross-check, an NDJSON round-trip recomposing bit-identically, and no
// leaked reservations.
func checkBooks(t *testing.T, tn *Tenant) {
	t.Helper()
	if err := tn.CrossCheck(); err != nil {
		t.Errorf("cross-check: %v", err)
	}
	if r := tn.Acct.Reserved(); r != 0 {
		t.Errorf("tenant %s leaked %d reservation(s)", tn.ID, r)
	}
	var buf bytes.Buffer
	if err := tn.Ledger.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	recs, err := obs.ReadLedgerNDJSON(&buf)
	if err != nil {
		t.Fatalf("ReadLedgerNDJSON: %v", err)
	}
	if len(recs) != tn.Acct.Count() {
		t.Fatalf("tenant %s: NDJSON has %d record(s), accountant spent %d", tn.ID, len(recs), tn.Acct.Count())
	}
	eps := make([]float64, len(recs))
	del := make([]float64, len(recs))
	for i, r := range recs {
		eps[i], del[i] = r.Epsilon, r.Delta
	}
	ce, cd := obs.ComposeBasic(eps, del)
	g := tn.Acct.BasicComposition()
	//dplint:ignore floateq bit-exact NDJSON-roundtrip-vs-accountant agreement is the audited property
	if ce != g.Epsilon || cd != g.Delta {
		t.Errorf("tenant %s: NDJSON composes to (%.17g, %.17g), accountant to (%.17g, %.17g)",
			tn.ID, ce, cd, g.Epsilon, g.Delta)
	}
}

// TestTenantIsolation interleaves two tenants with very different
// budgets: alpha exhausts and starts drawing 429s while beta keeps
// being served, and both sets of books audit clean at the end.
func TestTenantIsolation(t *testing.T) {
	_, ts := newTestService(t, Config{
		Tenants: []TenantConfig{
			{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 1}},
			{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 50}},
		},
		Learner: LearnerSpec{Epsilon: 0.4},
	})
	data := testData(11, 24, 2)
	var alphaRejected, betaOK int
	for i := 0; i < 10; i++ {
		for _, tenant := range []string{"alpha", "beta"} {
			resp, body := postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: tenant, Seed: int64(100 + i), Data: data})
			switch resp.StatusCode {
			case http.StatusOK:
				if tenant == "beta" {
					betaOK++
				}
			case http.StatusTooManyRequests:
				if tenant == "beta" {
					t.Fatalf("beta rejected at round %d: %s", i, body)
				}
				alphaRejected++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
					t.Errorf("429 body not an ErrorResponse: %s", body)
				}
			default:
				t.Fatalf("tenant %s round %d: HTTP %d: %s", tenant, i, resp.StatusCode, body)
			}
			// Interleave ε-quoting traffic on beta to prove alpha's state
			// never bleeds over.
			resp, body = postJSON(t, ts.URL+"/v1/summary", SummaryRequest{
				Tenant: "beta", Seed: int64(1000 + i), Feature: 0, Lo: -1, Hi: 1,
				Quantiles: []float64{0.5}, Epsilon: 0.05, Data: data,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("beta summary round %d: HTTP %d: %s", i, resp.StatusCode, body)
			}
		}
	}
	// alpha's budget of 1 admits two 0.4-fits; the remaining 8 rounds
	// must all reject.
	if alphaRejected != 8 {
		t.Errorf("alpha: got %d rejections, want 8", alphaRejected)
	}
	if betaOK != 10 {
		t.Errorf("beta: got %d successful fits, want 10", betaOK)
	}
}

// TestTenantIsolationBooks re-runs a short interleaved load and audits
// both tenants' NDJSON ledgers bit-for-bit against their accountants.
func TestTenantIsolationBooks(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{
			{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 1}},
			{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 50}},
		},
		Learner: LearnerSpec{Epsilon: 0.4},
	})
	data := testData(12, 24, 2)
	for i := 0; i < 6; i++ {
		for _, tenant := range []string{"alpha", "beta"} {
			resp, body := postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: tenant, Seed: int64(i), Data: data})
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("tenant %s: HTTP %d: %s", tenant, resp.StatusCode, body)
			}
			resp, body = postJSON(t, ts.URL+"/v1/density", DensityRequest{
				Tenant: tenant, Seed: int64(50 + i), Feature: 0, Lo: -1, Hi: 1, Epsilon: 0.03, Bins: 8, Data: data,
			})
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("tenant %s density: HTTP %d: %s", tenant, resp.StatusCode, body)
			}
		}
	}
	for _, tn := range s.Tenants().Tenants() {
		checkBooks(t, tn)
	}
	alpha, _ := s.Tenants().Get("alpha")
	if g := alpha.Acct.BasicComposition(); g.Epsilon > alpha.Budget().Epsilon {
		t.Errorf("alpha overspent: %.17g > %.17g", g.Epsilon, alpha.Budget().Epsilon)
	}
}

// TestDegradeOverride exhausts a tenant and then exercises the
// per-request policy override: fallback re-releases the cached fit for
// free, widen spends exactly the remainder, refuse still answers 429.
func TestDegradeOverride(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 1}}},
		Learner: LearnerSpec{Epsilon: 0.8},
	})
	data := testData(13, 24, 2)
	resp, body := postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 1, Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first fit: HTTP %d: %s", resp.StatusCode, body)
	}
	tn, _ := s.Tenants().Get("solo")
	countAfterFirst := tn.Acct.Count()

	// The default (refuse) cannot admit a second 0.8-fit.
	resp, _ = postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 2, Data: data})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("refused fit: got HTTP %d, want 429", resp.StatusCode)
	}

	// fallback: 200, degraded, and — post-processing — zero new spend.
	resp, body = postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 3, Degrade: "fallback", Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback fit: HTTP %d: %s", resp.StatusCode, body)
	}
	var fr FitResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("fallback response: %v", err)
	}
	if !fr.Degraded || fr.Policy != "fallback" {
		t.Errorf("fallback response: degraded=%v policy=%q", fr.Degraded, fr.Policy)
	}
	if got := tn.Acct.Count(); got != countAfterFirst {
		t.Errorf("fallback spent: %d records, want %d", got, countAfterFirst)
	}

	// widen: 200, degraded, and the budget closes to exactly zero.
	resp, body = postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 4, Degrade: "widen", Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("widen fit: HTTP %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("widen response: %v", err)
	}
	if !fr.Degraded || fr.Policy != "widen" {
		t.Errorf("widen response: degraded=%v policy=%q", fr.Degraded, fr.Policy)
	}
	rem, ok := tn.Acct.Remaining()
	if !ok {
		t.Fatal("tenant lost its budget")
	}
	//dplint:ignore floateq widen must close the budget to exactly zero, no floating-point residue
	if rem.Epsilon != 0 {
		t.Errorf("after widen: remaining ε = %.17g, want exactly 0", rem.Epsilon)
	}
	checkBooks(t, tn)
}

// TestRequestValidation walks the 4xx surface: unknown tenant, bad ε,
// dimension mismatch, malformed JSON, wrong method — none of which may
// spend.
func TestRequestValidation(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 5}}},
	})
	data := testData(14, 8, 2)
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown tenant", "/v1/fit", FitRequest{Tenant: "ghost", Seed: 1, Data: data}, http.StatusNotFound},
		{"no tenant", "/v1/fit", FitRequest{Seed: 1, Data: data}, http.StatusBadRequest},
		{"bad epsilon", "/v1/summary", SummaryRequest{Tenant: "solo", Epsilon: -1, Lo: -1, Hi: 1, Data: data}, http.StatusBadRequest},
		{"dim mismatch", "/v1/fit", FitRequest{Tenant: "solo", Seed: 1, Data: testData(14, 8, 3)}, http.StatusBadRequest},
		{"ragged rows", "/v1/fit", FitRequest{Tenant: "solo", Seed: 1, Data: DataJSON{X: [][]float64{{1, 2}, {3}}}}, http.StatusBadRequest},
		{"bad degrade", "/v1/fit", FitRequest{Tenant: "solo", Seed: 1, Degrade: "explode", Data: data}, http.StatusBadRequest},
		{"bad feature", "/v1/density", DensityRequest{Tenant: "solo", Feature: 7, Lo: -1, Hi: 1, Epsilon: 0.1, Data: data}, http.StatusBadRequest},
		{"bad kind", "/v1/density", DensityRequest{Tenant: "solo", Kind: "wavelet", Lo: -1, Hi: 1, Epsilon: 0.1, Data: data}, http.StatusBadRequest},
		{"short candidate", "/v1/select", SelectRequest{Tenant: "solo", Epsilon: 0.1, Candidates: []CandidateJSON{{Theta: []float64{1}}}, Data: data}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got HTTP %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/fit", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: got HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/fit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST endpoint: got HTTP %d, want 405", resp.StatusCode)
	}
	tn, _ := s.Tenants().Get("solo")
	if tn.Acct.Count() != 0 {
		t.Errorf("validation failures spent %d release(s)", tn.Acct.Count())
	}
}

// TestCertifyIsFree proves certificates stay available to an exhausted
// tenant: no release, no ε, no 429.
func TestCertifyIsFree(t *testing.T) {
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 0.1}}},
		Learner: LearnerSpec{Epsilon: 0.4},
	})
	data := testData(15, 24, 2)
	resp, _ := postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 1, Data: data})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fit on a 0.1 budget: got HTTP %d, want 429", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/certify", CertifyRequest{Tenant: "solo", Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("certify: HTTP %d: %s", resp.StatusCode, body)
	}
	var cr CertifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("certify response: %v", err)
	}
	if cr.Certificate.RiskBound <= 0 {
		t.Errorf("certificate risk bound %v, want > 0", cr.Certificate.RiskBound)
	}
	tn, _ := s.Tenants().Get("solo")
	if tn.Acct.Count() != 0 {
		t.Errorf("certify spent %d release(s), want 0", tn.Acct.Count())
	}
}

// TestBudgetEndpoints covers the read-only surface.
func TestBudgetEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{
		Tenants: []TenantConfig{
			{ID: "a", Budget: mechanism.Guarantee{Epsilon: 2}, Degrade: core.DegradeWiden},
			{ID: "b", Budget: mechanism.Guarantee{Epsilon: 3}},
		},
	})
	resp, err := http.Get(ts.URL + "/v1/budget?tenant=a")
	if err != nil {
		t.Fatal(err)
	}
	var bs BudgetStatus
	if err := json.NewDecoder(resp.Body).Decode(&bs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	//dplint:ignore floateq the configured budget is echoed verbatim
	if bs.Tenant != "a" || bs.BudgetEpsilon != 2 || bs.Degrade != "widen" {
		t.Errorf("budget status: %+v", bs)
	}
	resp, err = http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var all []BudgetStatus
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 2 || all[0].Tenant != "a" || all[1].Tenant != "b" {
		t.Errorf("tenants listing: %+v", all)
	}
	resp, err = http.Get(ts.URL + "/v1/crosscheck")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("crosscheck: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
}

// TestParseTenantBudgets covers the CLI declaration parser.
func TestParseTenantBudgets(t *testing.T) {
	cfgs, err := ParseTenantBudgets("beta=1.5, alpha=4", core.DegradeFallback)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].ID != "alpha" || cfgs[1].ID != "beta" {
		t.Fatalf("parsed %+v", cfgs)
	}
	//dplint:ignore floateq parsed flag values are echoed verbatim
	if cfgs[0].Budget.Epsilon != 4 || cfgs[1].Budget.Epsilon != 1.5 {
		t.Errorf("budgets %+v", cfgs)
	}
	if cfgs[0].Degrade != core.DegradeFallback {
		t.Errorf("degrade %v", cfgs[0].Degrade)
	}
	for _, bad := range []string{"", "alpha", "alpha=x", "alpha=1,alpha=2", "=3"} {
		if _, err := ParseTenantBudgets(bad, core.DegradeRefuse); err == nil {
			t.Errorf("ParseTenantBudgets(%q) accepted", bad)
		}
	}
}

// TestPercentile pins the nearest-rank convention.
func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	for _, tc := range []struct{ p, want float64 }{{50, 3}, {95, 5}, {99, 5}, {20, 1}, {100, 5}} {
		got := Percentile(samples, tc.p)
		//dplint:ignore floateq nearest-rank percentile returns an exact sample element
		if got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got == got { //dplint:ignore floateq NaN is the documented empty-input result
		t.Errorf("Percentile(nil) = %v, want NaN", got)
	}
}

// ExampleParseTenantBudgets documents the declaration syntax.
func ExampleParseTenantBudgets() {
	cfgs, _ := ParseTenantBudgets("alpha=4,beta=1.5", core.DegradeRefuse)
	for _, c := range cfgs {
		fmt.Printf("%s: eps=%g\n", c.ID, c.Budget.Epsilon)
	}
	// Output:
	// alpha: eps=4
	// beta: eps=1.5
}
