package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/wal"
)

// TenantConfig declares one tenant of the release service: an isolation
// domain with its own dataset universe, hard privacy budget, and default
// degrade policy.
type TenantConfig struct {
	// ID names the tenant; requests address it by this string.
	ID string
	// Budget is the tenant's hard (ε, δ) cap. Every admitted release
	// composes against it; Reserve rejects past it.
	Budget mechanism.Guarantee
	// Degrade is the tenant's default policy when the budget cannot
	// admit a fit (requests may override it per call).
	Degrade core.DegradePolicy
}

// Tenant is one live tenant: a dedicated Accountant enforcing the hard
// budget, the NDJSON privacy ledger mirroring every spend, and a
// Learner configured against the accountant. All fields are safe for
// concurrent use; isolation between tenants is structural — no shared
// accountant, ledger, fallback cache, or write-ahead log.
type Tenant struct {
	ID      string
	Degrade core.DegradePolicy
	Acct    *mechanism.Accountant
	Ledger  *obs.Ledger
	Learner *core.Learner

	observer *obs.Observer
	spent    *obs.Gauge
	burn     *obs.Gauge
	budget   *obs.Gauge
	releases *obs.Counter

	// wal is the tenant's write-ahead privacy ledger (nil without
	// -wal-dir; every call is then a no-op) and idem its idempotency
	// index, rebuilt from the WAL at recovery.
	wal  *wal.Log
	idem *idemStore
}

// Budget returns the tenant's hard (ε, δ) cap. It reads the accountant
// — the single authority, mutex-guarded — so hot-reloaded raises are
// visible immediately and race-free.
func (t *Tenant) Budget() mechanism.Guarantee {
	g, _ := t.Acct.Budget()
	return g
}

// CrossCheck verifies the tenant's ledger against its accountant: the
// record counts must match and the canonically composed (ε, δ) must
// agree bit-for-bit (both sides sort the spend multiset into the same
// canonical order and Kahan-sum it). A mismatch means a release
// escaped the books — the service must never pass its audit with one.
func (t *Tenant) CrossCheck() error {
	if got, want := t.Ledger.Len(), t.Acct.Count(); got != want {
		return fmt.Errorf("serve: tenant %s ledger has %d record(s), accountant spent %d", t.ID, got, want)
	}
	le, ld := t.Ledger.Composed()
	g := t.Acct.BasicComposition()
	//dplint:ignore floateq bit-exact ledger-vs-accountant agreement is the audited property
	if le != g.Epsilon || ld != g.Delta {
		return fmt.Errorf("serve: tenant %s ledger composes to (%.17g, %.17g), accountant to (%.17g, %.17g)",
			t.ID, le, ld, g.Epsilon, g.Delta)
	}
	return nil
}

// refreshSpent recomputes the tenant's spend gauge from the canonical
// composition — a pure function of the spend multiset, so the exposed
// value is deterministic for a given request history at any worker
// count. Called after every commit and once more at drain. It also
// refreshes the budget burn-rate gauge: composed ε per logical tick
// since boot. Ticks — not wall time — keep the gauge a pure function of
// the request history (the clock read itself is part of that history,
// identically placed in every run), so /metrics stays goldenable; the
// wall-clock burn estimate lives only in the 429 Retry-After header.
func (t *Tenant) refreshSpent() {
	g := t.Acct.BasicComposition()
	t.spent.Set(g.Epsilon)
	if ticks := t.observer.Now(); ticks > 0 {
		t.burn.Set(g.Epsilon / float64(ticks))
	}
}

// Registry maps tenant IDs to live tenants in a fixed declaration
// order (map iteration order must never leak into responses, metrics,
// or audit reports). The lock exists for hot-reload: lookups are
// read-locked, and ReloadTenants may append tenants while requests are
// in flight. Tenants are never removed — an isolation domain with spent
// budget must outlive its config entry.
type Registry struct {
	mu    sync.RWMutex
	order []string
	byID  map[string]*Tenant
}

// Get resolves a tenant by ID.
func (r *Registry) Get(id string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byID[id]
	return t, ok
}

// Tenants returns the live tenants in declaration order.
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Tenant, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// add appends a live tenant (hot-reload only; duplicate IDs rejected).
func (r *Registry) add(t *Tenant) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[t.ID]; dup {
		return fmt.Errorf("serve: duplicate tenant %q", t.ID)
	}
	r.byID[t.ID] = t
	r.order = append(r.order, t.ID)
	return nil
}

// CrossCheckAll audits every tenant's books, joining all failures in
// declaration order.
func (r *Registry) CrossCheckAll() error {
	var errs []string
	for _, t := range r.Tenants() {
		if err := t.CrossCheck(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve: cross-check failed: %s", strings.Join(errs, "; "))
	}
	return nil
}

// ParseTenantBudgets parses the CLI tenant declaration
// "alpha=4,beta=1.5" (tenant ID = ε budget) into configs sorted by ID,
// so the flag's declaration order never depends on shell quoting.
func ParseTenantBudgets(s string, degrade core.DegradePolicy) ([]TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("serve: empty tenant declaration")
	}
	var out []TenantConfig
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("serve: bad tenant entry %q (want id=budget)", part)
		}
		eps, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("serve: bad budget in %q: %w", part, err)
		}
		if seen[kv[0]] {
			return nil, fmt.Errorf("serve: duplicate tenant %q", kv[0])
		}
		seen[kv[0]] = true
		out = append(out, TenantConfig{
			ID:      kv[0],
			Budget:  mechanism.Guarantee{Epsilon: eps},
			Degrade: degrade,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// LearnerSpec shapes the per-tenant private learner: the predictor grid
// and the per-fit privacy price. Zero fields take the documented
// defaults.
type LearnerSpec struct {
	// Dim is the feature dimension of the predictor space (default 2).
	// Fit/certify/select requests must carry data of this dimension.
	Dim int
	// GridPoints is the per-dimension grid resolution (default 5).
	GridPoints int
	// Box is the coefficient box half-width (default 2).
	Box float64
	// Epsilon is the ε spent by one non-degraded Fit (default 0.5).
	Epsilon float64
	// Delta is the PAC-Bayes confidence parameter (default 0.05).
	Delta float64
}

// withDefaults resolves zero fields.
func (sp LearnerSpec) withDefaults() LearnerSpec {
	if sp.Dim == 0 {
		sp.Dim = 2
	}
	if sp.GridPoints == 0 {
		sp.GridPoints = 5
	}
	if sp.Box == 0 { //dplint:ignore floateq config sentinel: an unset Box field is the exact zero value
		sp.Box = 2
	}
	if sp.Epsilon == 0 { //dplint:ignore floateq config sentinel: an unset Epsilon field is the exact zero value
		sp.Epsilon = 0.5
	}
	if sp.Delta == 0 { //dplint:ignore floateq config sentinel: an unset Delta field is the exact zero value
		sp.Delta = 0.05
	}
	return sp
}

// newTenant builds one live tenant: accountant with the hard budget,
// ledger wired as the spend observer (and, when the observer carries a
// tracer, into the trace stream), learner calibrated to the spec.
func newTenant(cfg TenantConfig, sp LearnerSpec, o *obs.Observer, workers int, spends *traceSpends, charges *chargeSpends) (*Tenant, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("serve: tenant needs an ID")
	}
	var tracer *obs.Tracer
	if o != nil {
		tracer = o.Tracer
	}
	t := &Tenant{
		ID:       cfg.ID,
		Degrade:  cfg.Degrade,
		Acct:     &mechanism.Accountant{},
		Ledger:   obs.NewLedger(tracer),
		observer: o,
		idem:     newIdemStore(),
	}
	if err := t.Acct.SetBudget(cfg.Budget); err != nil {
		return nil, fmt.Errorf("serve: tenant %s: %w", cfg.ID, err)
	}
	reg := o.Reg()
	t.spent = reg.Gauge("dplearn_serve_tenant_spent_epsilon",
		"canonically composed ε spent by the tenant", "tenant", cfg.ID)
	t.burn = reg.Gauge("dplearn_serve_tenant_burn_rate_epsilon_per_tick",
		"committed ε per logical clock tick since boot", "tenant", cfg.ID)
	t.budget = reg.Gauge("dplearn_serve_tenant_budget_epsilon",
		"hard ε budget configured for the tenant", "tenant", cfg.ID)
	t.budget.Set(cfg.Budget.Epsilon)
	t.releases = reg.Counter("dplearn_serve_tenant_releases_total",
		"accounted releases committed by the tenant", "tenant", cfg.ID)
	ledger, releases := t.Ledger, t.releases
	t.Acct.SetObserver(func(r mechanism.SpendRecord) {
		// Runs under the accountant's lock: record, tally, count —
		// nothing more. The trace id stamped on the spend joins the
		// ledger line to the request span tree; the traceSpends tally is
		// how the access log's spent_epsilon reports the exact committed
		// sum rather than a handler-side estimate; and the chargeSpends
		// tally is how a durable request's WAL commit record carries the
		// exact guarantees the accountant composed.
		ledger.Record(obs.LedgerRecord{
			Seq:         r.Seq,
			Mechanism:   r.Meta.Mechanism,
			Sensitivity: r.Meta.Sensitivity,
			Epsilon:     r.Guarantee.Epsilon,
			Delta:       r.Guarantee.Delta,
			Outcomes:    r.Meta.Outcomes,
			Duration:    r.Meta.Duration,
			Span:        r.Meta.Span,
			Trace:       r.Meta.Trace,
		})
		spends.add(r.Meta.Trace, r.Guarantee)
		charges.add(r.Meta.Charge, wal.Charge{
			Mechanism:   r.Meta.Mechanism,
			Sensitivity: r.Meta.Sensitivity,
			Outcomes:    r.Meta.Outcomes,
			Epsilon:     r.Guarantee.Epsilon,
			Delta:       r.Guarantee.Delta,
		})
		releases.Inc()
	})
	grid := learn.NewGrid(-sp.Box, sp.Box, sp.Dim, sp.GridPoints)
	learner, err := core.NewLearner(core.Config{
		Loss:     learn.ZeroOneLoss{},
		Thetas:   grid.Thetas(),
		Epsilon:  sp.Epsilon,
		Delta:    sp.Delta,
		Acct:     t.Acct,
		Degrade:  cfg.Degrade,
		Parallel: parallelOptions(workers, o),
	})
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s learner: %w", cfg.ID, err)
	}
	t.Learner = learner
	return t, nil
}

// newRegistry builds the tenant registry in declaration order.
func newRegistry(cfgs []TenantConfig, sp LearnerSpec, o *obs.Observer, workers int, spends *traceSpends, charges *chargeSpends) (*Registry, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("serve: need at least one tenant")
	}
	r := &Registry{byID: make(map[string]*Tenant, len(cfgs))}
	for _, cfg := range cfgs {
		if _, dup := r.byID[cfg.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", cfg.ID)
		}
		t, err := newTenant(cfg, sp, o, workers, spends, charges)
		if err != nil {
			return nil, err
		}
		r.byID[cfg.ID] = t
		r.order = append(r.order, cfg.ID)
	}
	return r, nil
}

// ReloadTenants applies a new tenant declaration live: unknown IDs
// become new tenants (with a WAL attached when the server runs one) and
// known IDs may RAISE their ε budget. Lowering is refused per entry —
// never below what the tenant has already spent or held, and more
// conservatively never below the current cap, because admission
// decisions already made against the old budget must stay sound. The
// first error is returned after all applicable entries are applied, so
// one bad entry cannot block a fleet-wide raise.
func (s *Server) ReloadTenants(cfgs []TenantConfig) (added, raised int, err error) {
	var errs []string
	for _, cfg := range cfgs {
		t, ok := s.reg.Get(cfg.ID)
		if !ok {
			nt, nerr := newTenant(cfg, s.spec, s.obs, s.cfg.Workers, s.spends, s.charges)
			if nerr != nil {
				errs = append(errs, nerr.Error())
				continue
			}
			if s.cfg.WALDir != "" {
				rep, werr := s.attachWAL(nt, s.cfg.WALDir)
				if werr != nil {
					errs = append(errs, werr.Error())
					continue
				}
				s.recovery = append(s.recovery, rep)
			}
			if aerr := s.reg.add(nt); aerr != nil {
				errs = append(errs, aerr.Error())
				continue
			}
			added++
			continue
		}
		cur := t.Budget()
		if cfg.Budget.Epsilon < cur.Epsilon || cfg.Budget.Delta < cur.Delta {
			errs = append(errs, fmt.Sprintf("serve: tenant %s: refusing to lower budget (ε=%g, δ=%g) below current (ε=%g, δ=%g)",
				cfg.ID, cfg.Budget.Epsilon, cfg.Budget.Delta, cur.Epsilon, cur.Delta))
			continue
		}
		if cfg.Budget == cur {
			continue
		}
		if serr := t.Acct.SetBudget(cfg.Budget); serr != nil {
			errs = append(errs, fmt.Sprintf("serve: tenant %s: %v", cfg.ID, serr))
			continue
		}
		t.budget.Set(cfg.Budget.Epsilon)
		raised++
	}
	if len(errs) > 0 {
		return added, raised, fmt.Errorf("serve: reload: %s", strings.Join(errs, "; "))
	}
	return added, raised, nil
}
