package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mechanism"
	"repro/internal/obs"
)

// postTraced is postJSON with a W3C traceparent header attached.
func postTraced(t *testing.T, url string, tc obs.TraceContext, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

// TestTraceLedgerAccessJoin is the end-to-end join contract: every
// traced 2xx request's committed ε charges land in the ledger under
// exactly its trace id, the access log's spent_epsilon equals the
// canonical composition of those charges bit for bit, per-tenant spent ε
// grouped by trace recomposes to the Accountant's total bit for bit, and
// the span tree reconstructs under the same trace ids.
func TestTraceLedgerAccessJoin(t *testing.T) {
	clock := &obs.LogicalClock{}
	var traceBuf, accessBuf bytes.Buffer
	o := &obs.Observer{
		Tracer:  obs.NewTracer(&traceBuf, clock),
		Metrics: obs.NewRegistry(),
		Clock:   clock,
	}
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{
			{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 5}},
			{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 0.6}},
		},
		Learner:   LearnerSpec{Epsilon: 0.4},
		Observer:  o,
		AccessLog: obs.NewAccessLog(&accessBuf),
	})
	data := testData(42, 16, 2)

	steps := []struct {
		path string
		seed int64
		body any
		want int
	}{
		{"/v1/fit", 101, FitRequest{Tenant: "alpha", Seed: 1, Data: data}, http.StatusOK},
		{"/v1/summary", 102, SummaryRequest{Tenant: "alpha", Seed: 2, Feature: 0, Lo: -1, Hi: 1,
			Quantiles: []float64{0.5}, Epsilon: 0.05, Data: data}, http.StatusOK},
		{"/v1/density", 103, DensityRequest{Tenant: "beta", Seed: 3, Feature: 0, Lo: -1, Hi: 1,
			Epsilon: 0.05, Bins: 8, Data: data}, http.StatusOK},
		{"/v1/density", 104, DensityRequest{Tenant: "beta", Seed: 4, Kind: "gibbs", Feature: 0, Lo: -1, Hi: 1,
			Epsilon: 0.05, BinChoices: []int{4, 8}, Clip: 4, Data: data}, http.StatusOK},
		{"/v1/select", 105, SelectRequest{Tenant: "beta", Seed: 5, Epsilon: 0.05,
			Candidates: []CandidateJSON{{Name: "a", Theta: []float64{1, 0}}, {Name: "b", Theta: []float64{0, 1}}},
			Data:       data}, http.StatusOK},
		{"/v1/certify", 106, CertifyRequest{Tenant: "alpha", Data: data}, http.StatusOK},
		{"/v1/fit", 107, FitRequest{Tenant: "beta", Seed: 6, Data: data}, http.StatusOK},
		// beta's second 0.4-fit busts its 0.6 budget: a traced 429.
		{"/v1/fit", 108, FitRequest{Tenant: "beta", Seed: 7, Data: data}, http.StatusTooManyRequests},
	}
	wantTrace := map[string]obs.TraceContext{}
	for i, st := range steps {
		tc := obs.DeriveTraceContext(st.seed)
		wantTrace[tc.TraceID()] = tc
		resp, body := postTraced(t, ts.URL+st.path, tc, st.body)
		if resp.StatusCode != st.want {
			t.Fatalf("step %d (%s): HTTP %d, want %d: %s", i, st.path, resp.StatusCode, st.want, body)
		}
	}

	trace, err := obs.ReadTraceNDJSON(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	access, err := obs.ReadTraceNDJSON(&accessBuf)
	if err != nil {
		t.Fatal(err)
	}
	trace.Merge(access)
	if got, want := len(trace.Access), len(steps); got != want {
		t.Fatalf("access log has %d records, want %d", got, want)
	}

	// Group ledger charges by trace id; every charge must carry one, and
	// it must be a trace we issued.
	ledgerByTrace := map[string][]obs.LedgerRecord{}
	for _, lr := range trace.Ledger {
		if lr.Trace == "" {
			t.Fatalf("ledger seq %d committed without a trace id", lr.Seq)
		}
		if _, ok := wantTrace[lr.Trace]; !ok {
			t.Fatalf("ledger seq %d carries unknown trace %s", lr.Seq, lr.Trace)
		}
		ledgerByTrace[lr.Trace] = append(ledgerByTrace[lr.Trace], lr)
	}

	// Each 2xx access record's spent ε must equal the canonical
	// composition of its trace's ledger charges, bit for bit; refused
	// requests must have charged nothing.
	accessByTrace := map[string]obs.AccessRecord{}
	for _, ar := range trace.Access {
		if _, dup := accessByTrace[ar.Trace]; dup {
			t.Fatalf("trace %s appears on two access records", ar.Trace)
		}
		accessByTrace[ar.Trace] = ar
		charges := ledgerByTrace[ar.Trace]
		eps := make([]float64, len(charges))
		del := make([]float64, len(charges))
		for i, lr := range charges {
			eps[i], del[i] = lr.Epsilon, lr.Delta
		}
		composed, _ := obs.ComposeBasic(eps, del)
		switch {
		case ar.Status == http.StatusOK && ar.Outcome == "committed":
			//dplint:ignore floateq bit-exact access-log-vs-ledger agreement is the property under test
			if composed != ar.SpentEpsilon {
				t.Errorf("trace %s: access says spent=%.17g, ledger composes to %.17g", ar.Trace, ar.SpentEpsilon, composed)
			}
			if len(charges) == 0 {
				t.Errorf("trace %s: committed but no ledger charges", ar.Trace)
			}
		case ar.Outcome == "refused", ar.Outcome == "free":
			if len(charges) != 0 {
				t.Errorf("trace %s: outcome %s but %d ledger charge(s)", ar.Trace, ar.Outcome, len(charges))
			}
			//dplint:ignore floateq an uncharged request must report the exact zero
			if ar.SpentEpsilon != 0 {
				t.Errorf("trace %s: outcome %s but spent=%.17g", ar.Trace, ar.Outcome, ar.SpentEpsilon)
			}
		}
	}

	// Per-tenant: the trace-grouped charges recompose to the Accountant's
	// canonical total bit for bit (every spend in this run was traced).
	for _, tn := range s.Tenants().Tenants() {
		var eps, del []float64
		for trID, charges := range ledgerByTrace {
			if accessByTrace[trID].Tenant != tn.ID {
				continue
			}
			for _, lr := range charges {
				eps = append(eps, lr.Epsilon)
				del = append(del, lr.Delta)
			}
		}
		ce, cd := obs.ComposeBasic(eps, del)
		g := tn.Acct.BasicComposition()
		//dplint:ignore floateq bit-exact trace-grouped-vs-accountant agreement is the property under test
		if ce != g.Epsilon || cd != g.Delta {
			t.Errorf("tenant %s: trace-grouped charges compose to (%.17g, %.17g), accountant to (%.17g, %.17g)",
				tn.ID, ce, cd, g.Epsilon, g.Delta)
		}
		checkBooks(t, tn)
	}

	// Span tree: every 2xx spending request reconstructs a root request
	// span with at least one child under its trace id, and each ledger
	// charge's span id names a span in the same trace.
	spansByTrace := map[string]map[uint64]obs.SpanRecord{}
	childCount := map[string]int{}
	for _, sp := range trace.Spans {
		if sp.Trace == "" {
			continue
		}
		if spansByTrace[sp.Trace] == nil {
			spansByTrace[sp.Trace] = map[uint64]obs.SpanRecord{}
		}
		spansByTrace[sp.Trace][sp.ID] = sp
		if sp.Parent != 0 {
			childCount[sp.Trace]++
		}
	}
	for trID, ar := range accessByTrace {
		if ar.Status != http.StatusOK {
			continue
		}
		if len(spansByTrace[trID]) == 0 {
			t.Errorf("trace %s: 2xx request left no spans", trID)
		}
		if ar.Outcome == "committed" && childCount[trID] == 0 {
			t.Errorf("trace %s: committed request has no child spans", trID)
		}
	}
	for _, lr := range trace.Ledger {
		if lr.Span == 0 {
			t.Errorf("ledger seq %d (trace %s) has no span id", lr.Seq, lr.Trace)
			continue
		}
		if _, ok := spansByTrace[lr.Trace][lr.Span]; !ok {
			t.Errorf("ledger seq %d names span %d, absent from trace %s", lr.Seq, lr.Span, lr.Trace)
		}
	}
}

// TestMetricsGoldenWithTracing replays the exact golden script with a
// live tracer wired in and demands the dplearn_serve_ metrics stay
// byte-identical to the golden file: silent spans consume the same clock
// reads as emitting ones, and exemplar attachment keys on the request's
// traceparent (the script sends none), so wiring a tracer must not move
// a single metric byte.
func TestMetricsGoldenWithTracing(t *testing.T) {
	clock := &obs.LogicalClock{}
	var traceBuf bytes.Buffer
	o := &obs.Observer{
		Tracer:  obs.NewTracer(&traceBuf, clock),
		Metrics: obs.NewRegistry(),
		Clock:   clock,
	}
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{
			{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 5}},
			{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 0.6}},
		},
		Learner:  LearnerSpec{Epsilon: 0.4},
		Observer: o,
	})
	drainScript(t, s, ts.URL)
	got := scrapeServeMetrics(t, ts.URL)
	want, err := os.ReadFile(filepath.Join("testdata", "metrics_serve.golden"))
	if err != nil {
		t.Fatalf("read golden (generate via TestMetricsGoldenAcrossWorkers -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("tracing perturbed the metrics:\n--- with tracer ---\n%s--- golden ---\n%s", got, want)
	}
	if traceBuf.Len() == 0 {
		t.Fatal("tracer emitted nothing — the run was not actually traced")
	}
}

// TestAccessLogExemplars sends one traced and one untraced request and
// checks exemplar attachment keys on the request's traceparent: the
// traced request's id may appear in /metrics, an untraced run's output
// must contain no exemplar markers at all.
func TestAccessLogExemplars(t *testing.T) {
	run := func(traced bool) string {
		_, ts := newTestService(t, Config{
			Tenants: []TenantConfig{{ID: "solo", Budget: mechanism.Guarantee{Epsilon: 5}}},
			Learner: LearnerSpec{Epsilon: 0.4},
		})
		// 2048 rows → 8 chunk spans per parallel pass, pushing the request
		// duration into the histogram's exemplar-carrying tail buckets.
		data := testData(42, 2048, 2)
		if traced {
			resp, _ := postTraced(t, ts.URL+"/v1/fit", obs.DeriveTraceContext(9), FitRequest{Tenant: "solo", Seed: 1, Data: data})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("traced fit: HTTP %d", resp.StatusCode)
			}
		} else {
			resp, _ := postJSON(t, ts.URL+"/v1/fit", FitRequest{Tenant: "solo", Seed: 1, Data: data})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("untraced fit: HTTP %d", resp.StatusCode)
			}
		}
		return scrapeServeMetrics(t, ts.URL)
	}
	if metrics := run(false); bytes.Contains([]byte(metrics), []byte("# {")) {
		t.Errorf("untraced run rendered exemplars:\n%s", metrics)
	}
	traced := run(true)
	if !bytes.Contains([]byte(traced), []byte(`trace_id="`+obs.DeriveTraceContext(9).TraceID()+`"`)) {
		t.Errorf("traced run rendered no exemplar for the request's trace id:\n%s", traced)
	}
}
