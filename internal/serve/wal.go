package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/faults"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/wal"
)

// idempotencyHeader is the client-supplied retry-correlation header: two
// requests carrying the same key are the same logical request, and the
// second must return the first's outcome without re-spending ε.
const idempotencyHeader = "Idempotency-Key"

// replayedHeader marks a response served from the durable outcome store
// rather than a fresh release.
const replayedHeader = "Idempotency-Replayed"

// errDuplicateKey reports a request whose idempotency key is already in
// flight: the retry arrived before the original settled, and running
// both would risk a double release. Mapped to 409.
var errDuplicateKey = errors.New("serve: idempotency key already in flight")

// chargeSpends collects the exact guarantees committed under each
// in-flight durable request, keyed by a server-assigned charge-scope id
// (mirroring traceSpends, which does the same for the access log's ε
// sum). The durable envelope opens a scope, the facade's commit sites
// stamp SpendMeta.Charge from the request context, the tenant's
// accountant observer deposits each committed guarantee here, and the
// envelope collects them onto the WAL commit record — so the record
// carries the guarantees the accountant actually composed, bit for bit,
// even when the mechanism recomputed ε internally (a widened fit, a
// recalibrated Gibbs density).
type chargeSpends struct {
	mu  sync.Mutex
	seq uint64
	m   map[string][]wal.Charge
}

func newChargeSpends() *chargeSpends {
	return &chargeSpends{m: make(map[string][]wal.Charge)}
}

// begin opens a fresh charge scope and returns its id.
func (cs *chargeSpends) begin() string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.seq++
	id := "c" + strconv.FormatUint(cs.seq, 10)
	cs.m[id] = nil
	return id
}

// add deposits one committed guarantee under scope id. Unregistered
// scopes are ignored (spends outside any durable envelope).
func (cs *chargeSpends) add(id string, c wal.Charge) {
	if cs == nil || id == "" {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.m[id]; ok {
		cs.m[id] = append(cs.m[id], c)
	}
}

// take closes the scope and returns its collected charges in commit
// order.
func (cs *chargeSpends) take(id string) []wal.Charge {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := cs.m[id]
	delete(cs.m, id)
	return out
}

// drop closes the scope discarding its charges (deferred cleanup for
// error paths; a no-op after take).
func (cs *chargeSpends) drop(id string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	delete(cs.m, id)
}

// idemOutcome is one settled response held for replay.
type idemOutcome struct {
	status      int
	fingerprint string
	body        []byte
}

// idemStore is a tenant's idempotency index: settled outcomes by client
// key (for replay) plus the keys currently in flight (to refuse a
// concurrent duplicate with 409 instead of racing two releases). The
// durable copy of the settled outcomes lives on the WAL's commit
// records; this is the in-memory view, rebuilt by recovery — so the
// store works across restarts exactly when a WAL is attached, and
// within one process lifetime without one.
type idemStore struct {
	mu       sync.Mutex
	done     map[string]idemOutcome
	inflight map[string]bool
}

func newIdemStore() *idemStore {
	return &idemStore{done: make(map[string]idemOutcome), inflight: make(map[string]bool)}
}

// claim resolves a key: a settled outcome replays, an in-flight key is
// refused, a fresh key is claimed (the caller must settle or abandon).
func (st *idemStore) claim(key string) (out idemOutcome, replay bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if o, ok := st.done[key]; ok {
		return o, true, nil
	}
	if st.inflight[key] {
		return idemOutcome{}, false, fmt.Errorf("%w: %q", errDuplicateKey, key)
	}
	st.inflight[key] = true
	return idemOutcome{}, false, nil
}

// settle records the committed outcome and releases the in-flight claim.
func (st *idemStore) settle(key string, out idemOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done[key] = out
	delete(st.inflight, key)
}

// abandon releases an in-flight claim without an outcome (the request
// refused, failed, or crashed — a retry may run it afresh). After a
// settle it is a no-op, so callers may defer it unconditionally.
func (st *idemStore) abandon(key string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.inflight, key)
}

// restore seeds the settled outcomes from WAL recovery.
func (st *idemStore) restore(outs map[string]wal.ReplayOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, o := range outs {
		st.done[k] = idemOutcome{status: o.Status, fingerprint: o.Fingerprint, body: o.Response}
	}
}

// RecoveryReport summarizes one tenant's WAL recovery at boot.
type RecoveryReport struct {
	Tenant string `json:"tenant"`
	// Commits is the number of commit records replayed; Charges the
	// number of guarantees they carried (one commit may hold several).
	Commits int `json:"commits"`
	Charges int `json:"charges"`
	// Voided counts reserves the log had settled with explicit voids;
	// Unsettled counts the in-flight reserves the crash stranded, which
	// recovery settled as voids (their releases never escaped).
	Voided    int `json:"voided"`
	Unsettled int `json:"unsettled"`
	// RestoredKeys is the number of idempotency outcomes restored.
	RestoredKeys int `json:"restored_keys"`
	// Epsilon and Delta are the recovered canonical composition —
	// verified bit-for-bit against obs.ComposeBasic of the WAL's commit
	// charges before the server accepts traffic.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// attachWAL opens (or creates) the tenant's write-ahead ledger under
// dir, replays it to rebuild the accountant, and wires the log into the
// tenant. Replay drives every recovered charge through SpendDetail — the
// same observer path live commits take — so the NDJSON privacy ledger
// mirrors the recovered spends and CrossCheck holds from the first
// request. The rebuilt composition is verified bit-for-bit against
// obs.ComposeBasic of the commit records' charges; a mismatch fails the
// boot, because books that cannot be audited must not serve. Stranded
// reserves are settled with explicit void records, so recovery itself
// is idempotent: a second replay of the repaired log reaches the same
// state.
func (s *Server) attachWAL(t *Tenant, dir string) (RecoveryReport, error) {
	rep := RecoveryReport{Tenant: t.ID}
	l, recs, err := wal.Open(filepath.Join(dir, t.ID+".wal"))
	if err != nil {
		return rep, fmt.Errorf("serve: tenant %s: %w", t.ID, err)
	}
	st := wal.Replay(recs)
	var eps, del []float64
	for _, rec := range st.Commits {
		for _, ch := range rec.Charges {
			t.Acct.SpendDetail(mechanism.Guarantee{Epsilon: ch.Epsilon, Delta: ch.Delta}, mechanism.SpendMeta{
				Mechanism:   ch.Mechanism,
				Sensitivity: ch.Sensitivity,
				Outcomes:    ch.Outcomes,
			})
			eps = append(eps, ch.Epsilon)
			del = append(del, ch.Delta)
		}
	}
	g := t.Acct.BasicComposition()
	ce, cd := obs.ComposeBasic(eps, del)
	//dplint:ignore floateq bit-exact recovery-vs-ledger agreement is the audited property
	if g.Epsilon != ce || g.Delta != cd {
		_ = l.Close()
		return rep, fmt.Errorf("serve: tenant %s: recovered accountant composes to (%.17g, %.17g), WAL commits to (%.17g, %.17g)",
			t.ID, g.Epsilon, g.Delta, ce, cd)
	}
	for _, res := range st.Unsettled {
		if _, err := l.Append(wal.Record{Op: wal.OpVoid, Ref: res.LSN}); err != nil {
			_ = l.Close()
			return rep, fmt.Errorf("serve: tenant %s: settling stranded reserve %d: %w", t.ID, res.LSN, err)
		}
	}
	t.idem.restore(st.Outcomes)
	rep.Commits = len(st.Commits)
	rep.Charges = len(eps)
	rep.Voided = st.Voided
	rep.Unsettled = len(st.Unsettled)
	rep.RestoredKeys = len(st.Outcomes)
	rep.Epsilon = g.Epsilon
	rep.Delta = g.Delta

	mreg := s.obs.Reg()
	appends := mreg.Counter("dplearn_wal_appends_total",
		"write-ahead ledger records appended", "tenant", t.ID)
	fsyncs := mreg.Counter("dplearn_wal_fsync_total",
		"write-ahead ledger fsyncs", "tenant", t.ID)
	fsyncErrs := mreg.Counter("dplearn_wal_fsync_errors_total",
		"write-ahead ledger fsync failures", "tenant", t.ID)
	l.SetHooks(func(wal.Record) { appends.Inc() }, func(err error) {
		fsyncs.Inc()
		if err != nil {
			fsyncErrs.Inc()
		}
	})
	mreg.Gauge("dplearn_wal_recovered_commits",
		"commit records replayed at the last recovery", "tenant", t.ID).Set(float64(rep.Commits))
	mreg.Gauge("dplearn_wal_recovered_voids",
		"stranded reserves settled as voids at the last recovery", "tenant", t.ID).Set(float64(rep.Unsettled))
	mreg.Gauge("dplearn_wal_recovered_epsilon",
		"canonically composed ε rebuilt from the WAL at the last recovery", "tenant", t.ID).Set(rep.Epsilon)
	t.wal = l
	return rep, nil
}

// RecoveryReports returns the per-tenant WAL recovery summaries from
// boot (nil when the server runs without a WAL).
func (s *Server) RecoveryReports() []RecoveryReport {
	return s.recovery
}

// CloseWALs releases every tenant's write-ahead log file. For orderly
// shutdown (and test supervisors cycling servers over one WAL dir); a
// crashed process never gets to call it, which is the point of the WAL.
func (s *Server) CloseWALs() {
	for _, t := range s.reg.Tenants() {
		_ = t.wal.Close()
	}
}

// crash fires a simulated process death at a WAL phase boundary: the
// tenant's log is frozen first — as if the file descriptor died with
// the process, so no deferred cleanup can append records a real crash
// would never have produced — and the handler aborts by panic. The
// middleware's recover converts the abort into a 500, standing in for
// the connection dying: either way, no response bytes escaped.
func (s *Server) crash(c faults.Class, key int, t *Tenant) {
	sched := s.cfg.Faults
	if sched == nil || !sched.Hit(c, key) {
		return
	}
	t.wal.Freeze()
	panic(fmt.Errorf("%w: %s at site %d (simulated process death)", faults.ErrInjected, c, key))
}

// writeRaw writes pre-encoded JSON response bytes.
func (s *Server) writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		// The client went away mid-response; there is no one to tell.
		return
	}
}

// durable wraps one spending endpoint body in the write-ahead envelope
// that makes its charge crash-recoverable and its retry idempotent. The
// ordering is the whole argument:
//
//  1. idempotency: a settled key replays the stored response (no second
//     charge, across restarts); an in-flight key is refused with 409.
//  2. a reserve record is appended and fsynced BEFORE the body runs —
//     before admission, before any noise — so a crash anywhere past
//     this point leaves durable evidence of the in-flight intent.
//  3. the body runs: in-memory admission (429 on refusal), the
//     mechanism, the in-memory two-phase commit. Every guarantee it
//     commits is collected under this request's charge scope.
//  4. the response is marshaled, and a commit record carrying its
//     status, fingerprint, body, and exact charges is appended and
//     fsynced BEFORE any response byte reaches the client. A crash
//     after the in-memory commit but before this point loses only
//     state a crash erases anyway — and since the response never
//     escaped, recovery correctly settles the reserve as void: by the
//     information-theoretic reading, an emission that never happened
//     leaks nothing and costs nothing.
//  5. only then do the bytes escape. If the durable commit fails
//     without a crash, the client gets a 5xx and the in-memory charge
//     stands — conservative over-counting, never under-counting.
//
// Every error path settles the WAL transaction as void via the deferred
// Release; a crash leaves the reserve unsettled, which recovery treats
// identically. Commit-xor-5xx therefore survives reboots: a client
// holds response bytes if and only if the WAL holds the commit record.
//
// With no WAL attached (t.wal == nil) every WAL call is a no-op and the
// flow — including idempotent replay within the process lifetime — is
// unchanged, consuming zero additional clock reads, so WAL-less servers
// keep the goldened /metrics surface byte-identical.
func (s *Server) durable(w http.ResponseWriter, r *http.Request, t *Tenant, endpoint string, seed int64, quoted float64, body func(ctx context.Context) (any, error)) {
	ai := accessFrom(r.Context())
	key := r.Header.Get(idempotencyHeader)
	if key != "" {
		ai.setIdemKey(key)
		out, replay, err := t.idem.claim(key)
		if err != nil {
			s.writeError(w, r, t.ID, err)
			return
		}
		if replay {
			s.obs.Reg().Counter("dplearn_wal_idem_replays_total",
				"requests served from the durable idempotency store", "tenant", t.ID).Inc()
			ai.setOutcome("replayed")
			w.Header().Set(replayedHeader, "true")
			s.writeRaw(w, out.status, out.body)
			return
		}
		// The claim must not outlive the request: settle stores the
		// outcome on success, and abandon (a no-op after settle) frees
		// the key on every refusal, error, and crash-unwind path so a
		// retry can run afresh.
		defer t.idem.abandon(key)
	}
	s.serveDurable(w, r, t, endpoint, seed, quoted, key, body)
}

// serveDurable is the envelope past the idempotency gate; split out so
// the claim's abandon/settle pairing in durable stays readable.
func (s *Server) serveDurable(w http.ResponseWriter, r *http.Request, t *Tenant, endpoint string, seed int64, quoted float64, key string, body func(ctx context.Context) (any, error)) {
	s.crash(faults.WALCrashPreReserve, int(seed), t)
	tx, err := t.wal.Begin(wal.Intent{Endpoint: endpoint, Key: key, Seed: seed, Epsilon: quoted})
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	defer tx.Release()
	s.crash(faults.WALCrashPostReserve, int(seed), t)
	scope := s.charges.begin()
	defer s.charges.drop(scope)
	payload, err := body(mechanism.WithChargeScope(r.Context(), scope))
	if err != nil {
		s.writeError(w, r, t.ID, err)
		return
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(payload); err != nil {
		http.Error(w, `{"error":"serve: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	s.crash(faults.WALCrashPreCommit, int(seed), t)
	if err := tx.Commit(mechanism.SpendMeta{}, wal.Outcome{
		Status:   http.StatusOK,
		Response: buf.Bytes(),
		Charges:  s.charges.take(scope),
	}); err != nil {
		// The charge is in memory but not durable, and the response must
		// not escape without its durable commit; 5xx and let the client
		// retry under its key. The in-memory charge stands — conservative
		// over-counting until restart, never under-counting.
		s.writeError(w, r, t.ID, err)
		return
	}
	s.crash(faults.WALCrashPostCommit, int(seed), t)
	if key != "" {
		t.idem.settle(key, idemOutcome{
			status:      http.StatusOK,
			fingerprint: wal.Fingerprint(buf.Bytes()),
			body:        buf.Bytes(),
		})
	}
	s.writeRaw(w, http.StatusOK, buf.Bytes())
}
