package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/wal"
)

// postKeyed posts body with an Idempotency-Key header.
func postKeyed(t *testing.T, url string, body any, key string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

// readWALRecords opens the WAL read-only-in-spirit (Open repairs the
// tail, which is what a recovering server would do anyway) and returns
// the surviving records. Only call it when no server holds the file.
func readWALRecords(t *testing.T, path string) []wal.Record {
	t.Helper()
	l, recs, err := wal.Open(path)
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", path, err)
	}
	l.Close()
	return recs
}

// commitsForKey returns the commit records that settle reserves carrying
// the given idempotency key (the key lives on the reserve; commits point
// back via Ref).
func commitsForKey(recs []wal.Record, key string) []wal.Record {
	reserves := make(map[uint64]wal.Record)
	for _, r := range recs {
		if r.Op == wal.OpReserve {
			reserves[r.LSN] = r
		}
	}
	var out []wal.Record
	for _, r := range recs {
		if r.Op != wal.OpCommit {
			continue
		}
		if res, ok := reserves[r.Ref]; ok && res.Key == key {
			out = append(out, r)
		}
	}
	return out
}

// composedOf recomposes a charge multiset canonically.
func composedOf(charges []wal.Charge) (float64, float64) {
	eps := make([]float64, len(charges))
	del := make([]float64, len(charges))
	for i, c := range charges {
		eps[i], del[i] = c.Epsilon, c.Delta
	}
	return obs.ComposeBasic(eps, del)
}

// walTenant is the single-tenant config the battery uses throughout.
func walTenant(budget float64) []TenantConfig {
	return []TenantConfig{{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: budget}}}
}

func getAlpha(t *testing.T, s *Server) *Tenant {
	t.Helper()
	tn, ok := s.Tenants().Get("alpha")
	if !ok {
		t.Fatal("tenant alpha missing")
	}
	return tn
}

// TestWALRecoveryRoundTrip serves keyed traffic against a WAL, restarts
// onto the same directory, and proves the rebuilt accountant matches
// the pre-restart books bit for bit — and that a key settled before the
// restart replays its exact bytes afterwards without a second charge.
func TestWALRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := testData(3, 24, 2)

	s1, ts1 := newTestService(t, Config{Tenants: walTenant(10), WALDir: dir})
	var bodies [][]byte
	for i := 0; i < 3; i++ {
		resp, body := postKeyed(t, ts1.URL+"/v1/fit",
			FitRequest{Tenant: "alpha", Seed: int64(100 + i), Data: data}, "rt-"+string(rune('a'+i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	// One keyless request too: durability must not depend on the key.
	if resp, body := postJSON(t, ts1.URL+"/v1/summary", SummaryRequest{
		Tenant: "alpha", Seed: 9, Feature: 0, Lo: -1, Hi: 1,
		Quantiles: []float64{0.5}, Epsilon: 0.3, Data: data,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: HTTP %d: %s", resp.StatusCode, body)
	}
	before := getAlpha(t, s1).Acct.BasicComposition()
	count := getAlpha(t, s1).Acct.Count()
	ts1.Close()
	s1.CloseWALs()

	s2, ts2 := newTestService(t, Config{Tenants: walTenant(10), WALDir: dir})
	tn := getAlpha(t, s2)
	after := tn.Acct.BasicComposition()
	//dplint:ignore floateq bit-exact recovery is the audited property
	if after.Epsilon != before.Epsilon || after.Delta != before.Delta {
		t.Fatalf("recovered composition (%.17g, %.17g) != pre-restart (%.17g, %.17g)",
			after.Epsilon, after.Delta, before.Epsilon, before.Delta)
	}
	if got := tn.Acct.Count(); got != count {
		t.Fatalf("recovered %d spend(s), want %d", got, count)
	}
	reps := s2.RecoveryReports()
	if len(reps) != 1 || reps[0].Tenant != "alpha" || reps[0].Commits != 4 || reps[0].RestoredKeys != 3 {
		t.Fatalf("recovery report %+v, want 4 commits and 3 restored keys for alpha", reps)
	}

	// A settled key replays across the restart: exact bytes, marker
	// header, zero new charge.
	resp, body := postKeyed(t, ts2.URL+"/v1/fit",
		FitRequest{Tenant: "alpha", Seed: 100, Data: data}, "rt-a")
	if resp.StatusCode != http.StatusOK || resp.Header.Get(replayedHeader) != "true" {
		t.Fatalf("replay: HTTP %d, %s=%q", resp.StatusCode, replayedHeader, resp.Header.Get(replayedHeader))
	}
	if !bytes.Equal(body, bodies[0]) {
		t.Fatalf("replayed body differs:\n got %s\nwant %s", body, bodies[0])
	}
	post := tn.Acct.BasicComposition()
	//dplint:ignore floateq a replay must charge exactly nothing
	if post.Epsilon != after.Epsilon {
		t.Fatalf("replay charged ε: %.17g -> %.17g", after.Epsilon, post.Epsilon)
	}
	checkBooks(t, tn)
	ts2.Close()
	s2.CloseWALs()

	// The WAL itself recomposes to the recovered accountant bit for bit.
	st := wal.Replay(readWALRecords(t, filepath.Join(dir, "alpha.wal")))
	ce, cd := composedOf(st.Charges())
	//dplint:ignore floateq bit-exact WAL-vs-accountant agreement is the audited property
	if ce != after.Epsilon || cd != after.Delta {
		t.Fatalf("WAL composes to (%.17g, %.17g), accountant to (%.17g, %.17g)", ce, cd, after.Epsilon, after.Delta)
	}
}

// TestWALCrashChaosEveryBoundary hard-aborts a keyed request at every
// WAL phase boundary on every spending endpoint, then reboots onto the
// WAL directory and proves the exactly-once contract: a crash after the
// durable commit leaves the charge and replays the stored response on
// retry; a crash anywhere earlier leaves no charge and the retry runs
// afresh, charging exactly once. Either way the client's retry settles
// with exactly one commit record and one durable charge.
func TestWALCrashChaosEveryBoundary(t *testing.T) {
	data := testData(5, 24, 2)
	endpoints := []struct {
		name string
		path string
		req  func(seed int64) any
	}{
		{"fit", "/v1/fit", func(seed int64) any {
			return FitRequest{Tenant: "alpha", Seed: seed, Data: data}
		}},
		{"select", "/v1/select", func(seed int64) any {
			return SelectRequest{Tenant: "alpha", Seed: seed, Epsilon: 0.3,
				Candidates: []CandidateJSON{{Name: "a", Theta: []float64{1, 0}}, {Name: "b", Theta: []float64{0, 1}}},
				Data:       data}
		}},
		{"density", "/v1/density", func(seed int64) any {
			return DensityRequest{Tenant: "alpha", Seed: seed, Feature: 0, Lo: -1, Hi: 1,
				Epsilon: 0.3, Bins: 8, Data: data}
		}},
		{"summary", "/v1/summary", func(seed int64) any {
			return SummaryRequest{Tenant: "alpha", Seed: seed, Feature: 0, Lo: -1, Hi: 1,
				Quantiles: []float64{0.5}, Epsilon: 0.3, Data: data}
		}},
	}

	for _, class := range faults.WALCrashes {
		for _, ep := range endpoints {
			t.Run(string(class)+"/"+ep.name, func(t *testing.T) {
				dir := t.TempDir()
				seed := int64(41)
				key := "retry-" + ep.name
				walPath := filepath.Join(dir, "alpha.wal")

				// Phase 1: the process "dies" mid-request. The client sees a
				// 500 and holds no response bytes.
				s1, ts1 := newTestService(t, Config{
					Tenants: walTenant(10), WALDir: dir,
					Faults: faults.NewSchedule(1, map[faults.Class]float64{class: 1}),
				})
				resp, body := postKeyed(t, ts1.URL+ep.path, ep.req(seed), key)
				if resp.StatusCode != http.StatusInternalServerError {
					t.Fatalf("crashed request: HTTP %d: %s", resp.StatusCode, body)
				}
				ts1.Close()
				_ = s1 // abandoned without drain or CloseWALs: that is the crash

				// Phase 2: reboot on the same WAL directory.
				s2, ts2 := newTestService(t, Config{Tenants: walTenant(10), WALDir: dir})
				tn := getAlpha(t, s2)
				rec := tn.Acct.BasicComposition()
				rep := s2.RecoveryReports()[0]

				if class == faults.WALCrashPostCommit {
					// The charge was durable before the crash; the response
					// simply never escaped. Recovery must charge it.
					if rep.Commits != 1 || rep.RestoredKeys != 1 || rec.Epsilon <= 0 {
						t.Fatalf("post-commit recovery: %+v, recovered ε=%g; want 1 commit, 1 restored key, ε>0", rep, rec.Epsilon)
					}
				} else {
					// Nothing escaped and nothing durable committed: the
					// recovered books must be empty, the stranded reserve (if
					// the crash came after it) settled as void.
					if rep.Commits != 0 || rec.Epsilon != 0 { //dplint:ignore floateq an uncommitted crash must recover to the exact zero spend
						t.Fatalf("%s recovery: %+v, recovered ε=%g; want no commits, ε=0", class, rep, rec.Epsilon)
					}
					wantUnsettled := 1
					if class == faults.WALCrashPreReserve {
						wantUnsettled = 0 // crashed before the reserve record existed
					}
					if rep.Unsettled != wantUnsettled {
						t.Fatalf("%s recovery: %d unsettled reserve(s), want %d", class, rep.Unsettled, wantUnsettled)
					}
				}

				// The retry under the same key settles the request.
				resp2, body2 := postKeyed(t, ts2.URL+ep.path, ep.req(seed), key)
				if resp2.StatusCode != http.StatusOK {
					t.Fatalf("retry: HTTP %d: %s", resp2.StatusCode, body2)
				}
				if class == faults.WALCrashPostCommit {
					if resp2.Header.Get(replayedHeader) != "true" {
						t.Fatal("post-commit retry must replay the durable outcome")
					}
					after := tn.Acct.BasicComposition()
					//dplint:ignore floateq a replay must charge exactly nothing
					if after.Epsilon != rec.Epsilon {
						t.Fatalf("replay charged ε: %.17g -> %.17g", rec.Epsilon, after.Epsilon)
					}
				} else {
					if resp2.Header.Get(replayedHeader) == "true" {
						t.Fatal("an uncharged crash must not have a replayable outcome")
					}
					if got := tn.Acct.BasicComposition(); got.Epsilon <= 0 {
						t.Fatalf("retry did not charge: ε=%g", got.Epsilon)
					}
				}
				final := tn.Acct.BasicComposition()
				checkBooks(t, tn)
				ts2.Close()
				s2.CloseWALs()

				// Forensics on the log itself: exactly one commit settles the
				// key, its fingerprint matches the bytes the client holds,
				// and the commit multiset recomposes the final books bit for
				// bit.
				recs := readWALRecords(t, walPath)
				commits := commitsForKey(recs, key)
				if len(commits) != 1 {
					t.Fatalf("key %q settled by %d commit(s), want exactly 1", key, len(commits))
				}
				if got, want := commits[0].Fingerprint, wal.Fingerprint(body2); got != want {
					t.Fatalf("commit fingerprint %s, client holds body hashing to %s", got, want)
				}
				st := wal.Replay(recs)
				ce, cd := composedOf(st.Charges())
				//dplint:ignore floateq bit-exact WAL-vs-accountant agreement is the audited property
				if ce != final.Epsilon || cd != final.Delta {
					t.Fatalf("WAL composes to (%.17g, %.17g), accountant to (%.17g, %.17g)",
						ce, cd, final.Epsilon, final.Delta)
				}

				// A third boot re-runs the full recovery audit (attachWAL
				// fails the boot on any bit mismatch) and must land on the
				// same books.
				s3, _ := newTestService(t, Config{Tenants: walTenant(10), WALDir: dir})
				re := getAlpha(t, s3).Acct.BasicComposition()
				//dplint:ignore floateq bit-exact recovery idempotence is the audited property
				if re.Epsilon != final.Epsilon || re.Delta != final.Delta {
					t.Fatalf("second recovery (%.17g, %.17g) != first (%.17g, %.17g)",
						re.Epsilon, re.Delta, final.Epsilon, final.Delta)
				}
				s3.CloseWALs()
			})
		}
	}
}

// TestWALKillRestartCycles runs a supervisor loop: each cycle serves
// fresh keyed traffic, then a chaos server hard-kills one request at
// that cycle's WAL phase boundary (plus a torn-tail scribble on the log,
// as a kill mid-write would leave), and the next cycle reboots onto the
// same directory. Across every restart the recovered ε must equal the
// canonical composition of the expected charge multiset bit for bit,
// grow monotonically, stay under budget, and every crashed key must
// settle via retry with exactly one charge.
func TestWALKillRestartCycles(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "alpha.wal")
	data := testData(7, 24, 2)
	const budget = 8.0
	const perFit = 0.5 // LearnerSpec default ε

	// expected accumulates the charge multiset a perfect observer would
	// hold; recovery must recompose exactly this.
	var expected []float64
	var prevRecovered float64
	var crashedKey string
	var crashedCharged bool

	for cycle, class := range faults.WALCrashes {
		// Reboot: recovery must reproduce the expected books bit for bit.
		s, ts := newTestService(t, Config{Tenants: walTenant(budget), WALDir: dir})
		tn := getAlpha(t, s)
		rec := tn.Acct.BasicComposition()
		wantEps, wantDel := obs.ComposeBasic(expected, make([]float64, len(expected)))
		//dplint:ignore floateq bit-exact recovery across kill/restart cycles is the audited property
		if rec.Epsilon != wantEps || rec.Delta != wantDel {
			t.Fatalf("cycle %d: recovered (%.17g, %.17g), expected multiset composes to (%.17g, %.17g)",
				cycle, rec.Epsilon, rec.Delta, wantEps, wantDel)
		}
		if rec.Epsilon < prevRecovered {
			t.Fatalf("cycle %d: recovered ε %.17g shrank below previous %.17g", cycle, rec.Epsilon, prevRecovered)
		}
		if rec.Epsilon > budget {
			t.Fatalf("cycle %d: recovered ε %.17g exceeds budget %g", cycle, rec.Epsilon, budget)
		}
		prevRecovered = rec.Epsilon

		// Settle the previous cycle's crashed key: a post-commit crash
		// replays (already charged), any other crash charges exactly once
		// now.
		if crashedKey != "" {
			resp, body := postKeyed(t, ts.URL+"/v1/fit",
				FitRequest{Tenant: "alpha", Seed: int64(1000 + cycle), Data: data}, crashedKey)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cycle %d: retry of %q: HTTP %d: %s", cycle, crashedKey, resp.StatusCode, body)
			}
			replayed := resp.Header.Get(replayedHeader) == "true"
			if crashedCharged != replayed {
				t.Fatalf("cycle %d: key %q replayed=%v, want %v", cycle, crashedKey, replayed, crashedCharged)
			}
			if !crashedCharged {
				expected = append(expected, perFit)
			}
		}

		// Fresh traffic.
		for i := 0; i < 2; i++ {
			seed := int64(cycle*100 + i)
			resp, body := postKeyed(t, ts.URL+"/v1/fit",
				FitRequest{Tenant: "alpha", Seed: seed, Data: data}, "c"+string(rune('0'+cycle))+"-"+string(rune('0'+i)))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cycle %d fit %d: HTTP %d: %s", cycle, i, resp.StatusCode, body)
			}
			expected = append(expected, perFit)
		}
		checkBooks(t, tn)
		ts.Close()
		s.CloseWALs()

		// Kill: a chaos server aborts one keyed request at this cycle's
		// phase boundary and is abandoned without cleanup.
		sk, tsk := newTestService(t, Config{
			Tenants: walTenant(budget), WALDir: dir,
			Faults: faults.NewSchedule(int64(cycle), map[faults.Class]float64{class: 1}),
		})
		crashedKey = "kill-" + string(rune('0'+cycle))
		resp, body := postKeyed(t, tsk.URL+"/v1/fit",
			FitRequest{Tenant: "alpha", Seed: int64(cycle*100 + 50), Data: data}, crashedKey)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("cycle %d kill: HTTP %d: %s", cycle, resp.StatusCode, body)
		}
		crashedCharged = class == faults.WALCrashPostCommit
		if crashedCharged {
			expected = append(expected, perFit)
		}
		tsk.Close()
		_ = sk // no drain, no CloseWALs: the kill is the point

		// A kill mid-write leaves a torn final line; scribble one so every
		// recovery also exercises tail repair.
		f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatalf("scribble: %v", err)
		}
		if _, err := f.WriteString(`{"op":"commit","lsn":99999,"charges":[{"epsi`); err != nil {
			t.Fatalf("scribble: %v", err)
		}
		f.Close()
	}

	// Final boot: settle the last crashed key and audit everything.
	s, ts := newTestService(t, Config{Tenants: walTenant(budget), WALDir: dir})
	tn := getAlpha(t, s)
	if crashedKey != "" {
		resp, _ := postKeyed(t, ts.URL+"/v1/fit",
			FitRequest{Tenant: "alpha", Seed: 9999, Data: data}, crashedKey)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("final retry: HTTP %d", resp.StatusCode)
		}
		if replayed := resp.Header.Get(replayedHeader) == "true"; replayed != crashedCharged {
			t.Fatalf("final retry replayed=%v, want %v", replayed, crashedCharged)
		}
		if !crashedCharged {
			expected = append(expected, perFit)
		}
	}
	final := tn.Acct.BasicComposition()
	wantEps, wantDel := obs.ComposeBasic(expected, make([]float64, len(expected)))
	//dplint:ignore floateq bit-exact final audit is the property under test
	if final.Epsilon != wantEps || final.Delta != wantDel {
		t.Fatalf("final books (%.17g, %.17g) != expected (%.17g, %.17g)", final.Epsilon, final.Delta, wantEps, wantDel)
	}
	if final.Epsilon > budget {
		t.Fatalf("final ε %.17g exceeds budget %g", final.Epsilon, budget)
	}
	checkBooks(t, tn)
	reports := s.RecoveryReports()
	ts.Close()
	s.CloseWALs()

	// Every kill-cycle key settled with exactly one commit.
	recs := readWALRecords(t, walPath)
	for cycle := range faults.WALCrashes {
		key := "kill-" + string(rune('0'+cycle))
		if got := len(commitsForKey(recs, key)); got != 1 {
			t.Errorf("key %q settled by %d commit(s), want exactly 1", key, got)
		}
	}

	// CHAOS_ARTIFACTS exports the raw evidence (CI uploads it).
	if dst := os.Getenv("CHAOS_ARTIFACTS"); dst != "" {
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatalf("artifacts: %v", err)
		}
		seg, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatalf("artifacts: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dst, "alpha.wal"), seg, 0o644); err != nil {
			t.Fatalf("artifacts: %v", err)
		}
		rep, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			t.Fatalf("artifacts: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dst, "recovery_report.json"), rep, 0o644); err != nil {
			t.Fatalf("artifacts: %v", err)
		}
	}
}

// TestIdempotencyReplayAndConflict exercises the in-process idempotency
// protocol without a WAL: a settled key replays its exact bytes without
// a second charge, and a duplicate arriving while the original is still
// in flight is refused with 409 instead of racing a second release.
func TestIdempotencyReplayAndConflict(t *testing.T) {
	s, ts := newTestService(t, Config{Tenants: walTenant(10)})
	tn := getAlpha(t, s)
	data := testData(13, 24, 2)

	resp, body := postKeyed(t, ts.URL+"/v1/fit", FitRequest{Tenant: "alpha", Seed: 1, Data: data}, "dup")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: HTTP %d: %s", resp.StatusCode, body)
	}
	spent := tn.Acct.BasicComposition()
	resp2, body2 := postKeyed(t, ts.URL+"/v1/fit", FitRequest{Tenant: "alpha", Seed: 1, Data: data}, "dup")
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get(replayedHeader) != "true" {
		t.Fatalf("replay: HTTP %d, %s=%q", resp2.StatusCode, replayedHeader, resp2.Header.Get(replayedHeader))
	}
	if !bytes.Equal(body2, body) {
		t.Fatalf("replayed body differs:\n got %s\nwant %s", body2, body)
	}
	//dplint:ignore floateq a replay must charge exactly nothing
	if got := tn.Acct.BasicComposition(); got.Epsilon != spent.Epsilon {
		t.Fatalf("replay charged ε: %.17g -> %.17g", spent.Epsilon, got.Epsilon)
	}

	// Concurrent duplicate: park the original in flight, then race the
	// same key against it.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookInFlight = func(string) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postKeyed(t, ts.URL+"/v1/fit", FitRequest{Tenant: "alpha", Seed: 2, Data: data}, "race")
		firstDone <- resp.StatusCode
	}()
	<-entered
	respDup, bodyDup := postKeyed(t, ts.URL+"/v1/fit", FitRequest{Tenant: "alpha", Seed: 2, Data: data}, "race")
	if respDup.StatusCode != http.StatusConflict {
		t.Fatalf("in-flight duplicate: HTTP %d: %s, want 409", respDup.StatusCode, bodyDup)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("parked original: HTTP %d", code)
	}
	// After the original settles, the same key replays.
	respAfter, _ := postKeyed(t, ts.URL+"/v1/fit", FitRequest{Tenant: "alpha", Seed: 2, Data: data}, "race")
	if respAfter.StatusCode != http.StatusOK || respAfter.Header.Get(replayedHeader) != "true" {
		t.Fatalf("post-settle duplicate: HTTP %d, replayed=%q", respAfter.StatusCode, respAfter.Header.Get(replayedHeader))
	}
	checkBooks(t, tn)
}

// TestReloadTenantsUnderLoad hot-reloads the tenant declaration while
// fit traffic is in flight: a new tenant appears live (with its own WAL
// attached), an existing tenant's budget raise is visible immediately,
// and a lowering attempt is refused without touching the books.
func TestReloadTenantsUnderLoad(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestService(t, Config{
		Tenants: []TenantConfig{{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 3}}},
		WALDir:  dir,
	})
	data := testData(17, 24, 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := postJSON(t, ts.URL+"/v1/fit",
					FitRequest{Tenant: "alpha", Seed: int64(g*1000 + i), Data: data})
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("load fit: HTTP %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}

	added, raised, err := s.ReloadTenants([]TenantConfig{
		{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 50}},
		{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 5}},
	})
	if err != nil || added != 1 || raised != 1 {
		t.Fatalf("reload: added=%d raised=%d err=%v, want 1/1/nil", added, raised, err)
	}
	if got := getAlpha(t, s).Budget().Epsilon; got != 50 { //dplint:ignore floateq the raised budget is set, not computed
		t.Fatalf("alpha budget %g after raise, want 50", got)
	}
	// The new tenant serves immediately, durably.
	resp, body := postKeyed(t, ts.URL+"/v1/fit", FitRequest{Tenant: "beta", Seed: 7, Data: data}, "beta-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta fit: HTTP %d: %s", resp.StatusCode, body)
	}

	// Lowering is refused and the budget stands.
	if _, _, err := s.ReloadTenants([]TenantConfig{{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 1}}}); err == nil {
		t.Fatal("lowering alpha's budget must be refused")
	}
	if got := getAlpha(t, s).Budget().Epsilon; got != 50 { //dplint:ignore floateq the refused lowering must leave the set budget untouched
		t.Fatalf("alpha budget %g after refused lowering, want 50", got)
	}

	close(stop)
	wg.Wait()
	for _, tn := range s.Tenants().Tenants() {
		checkBooks(t, tn)
	}
	ts.Close()
	s.CloseWALs()

	// Beta's durable state survives: a reboot recovers it and replays the
	// key.
	s2, ts2 := newTestService(t, Config{
		Tenants: []TenantConfig{
			{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 50}},
			{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 5}},
		},
		WALDir: dir,
	})
	resp2, body2 := postKeyed(t, ts2.URL+"/v1/fit", FitRequest{Tenant: "beta", Seed: 7, Data: data}, "beta-1")
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get(replayedHeader) != "true" {
		t.Fatalf("beta replay after reboot: HTTP %d, replayed=%q", resp2.StatusCode, resp2.Header.Get(replayedHeader))
	}
	if !bytes.Equal(body2, body) {
		t.Fatalf("beta replayed body differs across reboot")
	}
	s2.CloseWALs()
}
