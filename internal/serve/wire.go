package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mechanism"
)

// errBadRequest marks malformed request payloads; the HTTP layer maps
// it (like core.ErrBadConfig and core.ErrNonFiniteInput) to 400.
var errBadRequest = errors.New("serve: bad request")

// errUnknownTenant marks requests addressing a tenant the registry does
// not hold; mapped to 404.
var errUnknownTenant = errors.New("serve: unknown tenant")

// DataJSON is the wire form of a dataset: feature rows plus optional
// labels (required for fit/certify/select, ignored by the density and
// summary releases).
type DataJSON struct {
	X [][]float64 `json:"x"`
	Y []float64   `json:"y,omitempty"`
}

// dataset converts the wire form, enforcing rectangular rows and a
// label per row when labels are present. Finiteness is NOT checked
// here — the facade's ErrNonFiniteInput validation owns that, before
// any ε is spent.
func (dj *DataJSON) dataset() (*dataset.Dataset, error) {
	if len(dj.X) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", errBadRequest)
	}
	if len(dj.Y) != 0 && len(dj.Y) != len(dj.X) {
		return nil, fmt.Errorf("%w: %d rows but %d labels", errBadRequest, len(dj.X), len(dj.Y))
	}
	dim := len(dj.X[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: empty feature row", errBadRequest)
	}
	d := &dataset.Dataset{Examples: make([]dataset.Example, len(dj.X))}
	for i, row := range dj.X {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: row %d has %d features, row 0 has %d", errBadRequest, i, len(row), dim)
		}
		var y float64
		if len(dj.Y) != 0 {
			y = dj.Y[i]
		}
		d.Examples[i] = dataset.Example{X: append([]float64(nil), row...), Y: y}
	}
	return d, nil
}

// FitRequest asks for one private fit on the tenant's learner.
type FitRequest struct {
	Tenant string `json:"tenant"`
	// Seed drives the release's randomness; the same (tenant state,
	// seed, data) reproduces the same draw.
	Seed int64 `json:"seed"`
	// Degrade optionally overrides the tenant's default policy for this
	// request: "refuse", "fallback", or "widen".
	Degrade string   `json:"degrade,omitempty"`
	Data    DataJSON `json:"data"`
}

// CertificateJSON is the wire form of a core.Certificate.
type CertificateJSON struct {
	Epsilon    float64 `json:"epsilon"`
	Delta      float64 `json:"delta,omitempty"`
	Lambda     float64 `json:"lambda"`
	RiskBound  float64 `json:"risk_bound"`
	Confidence float64 `json:"confidence_delta"`
	ExpEmpRisk float64 `json:"exp_emp_risk"`
	KL         float64 `json:"kl_nats"`
}

func certificateJSON(c core.Certificate) CertificateJSON {
	return CertificateJSON{
		Epsilon:    c.Privacy.Epsilon,
		Delta:      c.Privacy.Delta,
		Lambda:     c.Lambda,
		RiskBound:  c.RiskBound,
		Confidence: c.Delta,
		ExpEmpRisk: c.ExpEmpRisk,
		KL:         c.KL,
	}
}

// FitResponse returns the privately selected predictor with its
// certificates.
type FitResponse struct {
	Theta       []float64       `json:"theta"`
	Index       int             `json:"index"`
	Degraded    bool            `json:"degraded"`
	Policy      string          `json:"policy"`
	Certificate CertificateJSON `json:"certificate"`
}

// CertifyRequest evaluates the certificates without releasing (free).
type CertifyRequest struct {
	Tenant string   `json:"tenant"`
	Data   DataJSON `json:"data"`
}

// CertifyResponse carries the certificate of a hypothetical fit.
type CertifyResponse struct {
	Certificate CertificateJSON `json:"certificate"`
}

// CandidateJSON is one predictor competing in private selection.
type CandidateJSON struct {
	Name  string    `json:"name"`
	Theta []float64 `json:"theta"`
}

// SelectRequest picks one candidate by the exponential mechanism scored
// on the validation data, spending Epsilon from the tenant's budget.
type SelectRequest struct {
	Tenant     string          `json:"tenant"`
	Seed       int64           `json:"seed"`
	Epsilon    float64         `json:"epsilon"`
	Candidates []CandidateJSON `json:"candidates"`
	Data       DataJSON        `json:"data"`
}

// SelectResponse names the selected candidate.
type SelectResponse struct {
	Name    string    `json:"name"`
	Theta   []float64 `json:"theta"`
	Epsilon float64   `json:"epsilon"`
}

// DensityRequest releases a private histogram density of one feature.
type DensityRequest struct {
	Tenant  string  `json:"tenant"`
	Seed    int64   `json:"seed"`
	Feature int     `json:"feature"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Epsilon float64 `json:"epsilon"`
	// Kind selects the mechanism: "laplace" (default; noised histogram
	// with Bins bins) or "gibbs" (exponential-mechanism selection over
	// BinChoices candidate resolutions, clipped at Clip).
	Kind       string   `json:"kind,omitempty"`
	Bins       int      `json:"bins,omitempty"`
	BinChoices []int    `json:"bin_choices,omitempty"`
	Clip       float64  `json:"clip,omitempty"`
	Data       DataJSON `json:"data"`
}

// DensityResponse is the released piecewise-constant density.
type DensityResponse struct {
	Lo      float64   `json:"lo"`
	Hi      float64   `json:"hi"`
	Bins    int       `json:"bins"`
	Density []float64 `json:"density"`
	Epsilon float64   `json:"epsilon"`
}

// SummaryRequest releases the ε-DP summary of one feature (noisy count,
// clamped mean, quantiles, histogram; Epsilon split across the parts).
type SummaryRequest struct {
	Tenant    string    `json:"tenant"`
	Seed      int64     `json:"seed"`
	Feature   int       `json:"feature"`
	Lo        float64   `json:"lo"`
	Hi        float64   `json:"hi"`
	Bins      int       `json:"bins,omitempty"`
	Quantiles []float64 `json:"quantiles,omitempty"`
	Epsilon   float64   `json:"epsilon"`
	Data      DataJSON  `json:"data"`
}

// QuantilePoint is one released quantile (sorted by P on the wire; a
// JSON map keyed by float would rot into strings).
type QuantilePoint struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// SummaryResponse is the released summary.
type SummaryResponse struct {
	Count     float64         `json:"count"`
	Mean      float64         `json:"mean"`
	Quantiles []QuantilePoint `json:"quantiles"`
	Histogram []float64       `json:"histogram"`
	Lo        float64         `json:"lo"`
	Hi        float64         `json:"hi"`
	Epsilon   float64         `json:"epsilon"`
}

func summaryResponse(sum *core.PrivateSummary, charged float64) *SummaryResponse {
	qs := make([]QuantilePoint, 0, len(sum.Quantiles))
	for p, v := range sum.Quantiles {
		qs = append(qs, QuantilePoint{P: p, Value: v})
	}
	// Sorting makes the response independent of map iteration order.
	sort.Slice(qs, func(i, j int) bool { return qs[i].P < qs[j].P })
	return &SummaryResponse{
		Count:     sum.Count,
		Mean:      sum.Mean,
		Quantiles: qs,
		Histogram: sum.Histogram,
		Lo:        sum.Lo,
		Hi:        sum.Hi,
		Epsilon:   charged,
	}
}

// BudgetStatus reports one tenant's books: configured budget, canonical
// composed spend, clamped headroom, and bookkeeping counts. It is pure
// post-processing of accounted metadata — no record data flows out.
type BudgetStatus struct {
	Tenant           string  `json:"tenant"`
	BudgetEpsilon    float64 `json:"budget_epsilon"`
	BudgetDelta      float64 `json:"budget_delta,omitempty"`
	SpentEpsilon     float64 `json:"spent_epsilon"`
	SpentDelta       float64 `json:"spent_delta,omitempty"`
	RemainingEpsilon float64 `json:"remaining_epsilon"`
	RemainingDelta   float64 `json:"remaining_delta,omitempty"`
	Releases         int     `json:"releases"`
	Reserved         int     `json:"reserved"`
	Degrade          string  `json:"degrade"`
}

func budgetStatus(t *Tenant) BudgetStatus {
	spent := t.Acct.BasicComposition()
	rem, _ := t.Acct.Remaining()
	budget := t.Budget()
	return BudgetStatus{
		Tenant:           t.ID,
		BudgetEpsilon:    budget.Epsilon,
		BudgetDelta:      budget.Delta,
		SpentEpsilon:     spent.Epsilon,
		SpentDelta:       spent.Delta,
		RemainingEpsilon: rem.Epsilon,
		RemainingDelta:   rem.Delta,
		Releases:         t.Acct.Count(),
		Reserved:         t.Acct.Reserved(),
		Degrade:          t.Degrade.String(),
	}
}

// ErrorResponse is the uniform error payload.
type ErrorResponse struct {
	Error string `json:"error"`
}

// validEpsilon rejects non-finite or non-positive request budgets
// before anything touches a mechanism constructor.
func validEpsilon(eps float64) error {
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps <= 0 {
		return fmt.Errorf("%w: epsilon must be finite and positive, got %v", errBadRequest, eps)
	}
	return nil
}

// candidates converts and validates the wire candidates against the
// validation data's dimension (a short theta would index out of range
// deep in the quality function).
func candidates(cands []CandidateJSON, dim int) ([]learn.Candidate, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: select needs candidates", errBadRequest)
	}
	out := make([]learn.Candidate, len(cands))
	for i, c := range cands {
		if len(c.Theta) != dim {
			return nil, fmt.Errorf("%w: candidate %d has %d coefficients, data has %d features",
				errBadRequest, i, len(c.Theta), dim)
		}
		out[i] = learn.Candidate{Name: c.Name, Theta: append([]float64(nil), c.Theta...)}
	}
	return out, nil
}

// quotedGuarantee is the service's price tag for a request that quotes
// its own ε: the serve layer reserves and commits exactly this quoted
// guarantee, so the tenant's books are a pure function of the admitted
// request history (the underlying mechanisms' recomputed guarantees can
// differ in the last float bits after calibration round-trips).
func quotedGuarantee(eps float64) mechanism.Guarantee {
	return mechanism.Guarantee{Epsilon: eps}
}
