// Package stats provides descriptive statistics, histograms, empirical
// distribution functions, quantiles, a two-sample Kolmogorov–Smirnov
// statistic, and bootstrap confidence intervals. These are the measuring
// instruments the experiment harness uses to compare mechanism outputs and
// learner errors.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// ErrEmpty is returned by routines that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty sample")
	}
	return mathx.SumSlice(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance. It panics with fewer than
// two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: Variance needs at least two observations")
	}
	var w mathx.Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StandardError returns StdDev(xs)/sqrt(n), the standard error of the mean.
func StandardError(xs []float64) float64 {
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the p-quantile of xs (0 <= p <= 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It panics on an empty sample or p outside [0, 1]. xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: Quantile p=%v outside [0,1]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// ECDF is the empirical cumulative distribution function of a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied, then sorted). It returns
// ErrEmpty for an empty sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F̂(x) = (#{xi <= x}) / n.
func (e *ECDF) At(x float64) float64 {
	// Index of first element > x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x { //dplint:ignore floateq tie scan over stored sample values: duplicates are bitwise copies
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the p-quantile of the underlying sample.
func (e *ECDF) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("stats: ECDF.Quantile p outside [0,1]")
	}
	return quantileSorted(e.sorted, p)
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F̂₁(x) − F̂₂(x)| between samples a and b. It panics on an
// empty sample.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic of empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		// Step past the smallest current value in both samples at once so
		// that ties are handled atomically (both ECDFs jump together).
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v { //dplint:ignore floateq tie scan: v is copied from sa[i]/sb[j], so matches are bitwise
			i++
		}
		for j < len(sb) && sb[j] == v { //dplint:ignore floateq tie scan: v is copied from sa[i]/sb[j], so matches are bitwise
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// Histogram is a fixed-bin histogram over [Lo, Hi) with equal-width bins.
// Values outside the range are clamped into the first/last bin so that
// Total always equals the number of Add calls (this keeps DP sensitivity
// analysis simple: one record moves exactly one unit of count).
type Histogram struct {
	Lo, Hi float64
	Counts []float64
	total  float64
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// BinIndex returns the bin index x falls in, clamped to [0, bins-1].
func (h *Histogram) BinIndex(x float64) int {
	bins := len(h.Counts)
	idx := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	return idx
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Counts[h.BinIndex(x)]++
	h.total++
}

// AddAll records all observations in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() float64 { return h.total }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinWidth returns the common bin width.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Probabilities returns the normalized bin masses (empty histogram yields
// all zeros).
func (h *Histogram) Probabilities() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 { //dplint:ignore floateq total is a sum of unit increments; exactly zero iff the histogram is empty
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / h.total
	}
	return out
}

// Density returns the histogram density estimate: mass per unit length,
// integrating to one over [Lo, Hi] (empty histogram yields zeros).
func (h *Histogram) Density() []float64 {
	p := h.Probabilities()
	w := h.BinWidth()
	for i := range p {
		p[i] /= w
	}
	return p
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{Lo: h.Lo, Hi: h.Hi, Counts: append([]float64(nil), h.Counts...), total: h.total}
	return out
}

// FreedmanDiaconisBins suggests a bin count for a sample via the
// Freedman–Diaconis rule, clamped to [1, maxBins]. A degenerate IQR falls
// back to Sturges' rule.
func FreedmanDiaconisBins(xs []float64, maxBins int) int {
	n := len(xs)
	if n < 2 {
		return 1
	}
	iqr := Quantile(xs, 0.75) - Quantile(xs, 0.25)
	lo, hi := mathx.MinMax(xs)
	span := hi - lo
	if span <= 0 {
		return 1
	}
	var bins int
	if iqr <= 0 {
		bins = int(math.Ceil(math.Log2(float64(n)))) + 1 // Sturges
	} else {
		width := 2 * iqr / math.Cbrt(float64(n))
		bins = int(math.Ceil(span / width))
	}
	if bins < 1 {
		bins = 1
	}
	if bins > maxBins {
		bins = maxBins
	}
	return bins
}

// BootstrapCI returns a percentile bootstrap confidence interval at the
// given level (e.g. 0.95) for statistic stat over sample xs, using resamples
// bootstrap replicates drawn with g. It panics on an empty sample, a level
// outside (0, 1), or resamples <= 0.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, g *rng.RNG) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if level <= 0 || level >= 1 {
		panic("stats: BootstrapCI level outside (0,1)")
	}
	if resamples <= 0 {
		panic("stats: BootstrapCI needs resamples > 0")
	}
	reps := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[g.Intn(len(xs))]
		}
		reps[r] = stat(buf)
	}
	alpha := (1 - level) / 2
	return Quantile(reps, alpha), Quantile(reps, 1-alpha)
}

// Summary holds the five-number summary plus mean and standard deviation
// of a sample.
type Summary struct {
	N                 int
	Min, Q1, Med, Q3  float64
	Max, Mean, StdDev float64
}

// Summarize computes a Summary. It returns ErrEmpty for an empty sample;
// StdDev is NaN for a single observation.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := Summary{
		N:    len(s),
		Min:  s[0],
		Q1:   quantileSorted(s, 0.25),
		Med:  quantileSorted(s, 0.5),
		Q3:   quantileSorted(s, 0.75),
		Max:  s[len(s)-1],
		Mean: Mean(s),
	}
	if len(s) >= 2 {
		sum.StdDev = StdDev(s)
	} else {
		sum.StdDev = math.NaN()
	}
	return sum, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g sd=%.4g",
		s.N, s.Min, s.Q1, s.Med, s.Q3, s.Max, s.Mean, s.StdDev)
}
