package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !mathx.AlmostEqual(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !mathx.AlmostEqual(Variance(xs), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if !mathx.AlmostEqual(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	se := StandardError(xs)
	if !mathx.AlmostEqual(se, StdDev(xs)/math.Sqrt(8), 1e-12) {
		t.Errorf("StandardError = %v", se)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean(empty) should panic")
		}
	}()
	Mean(nil)
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.p); !mathx.AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("single-element quantile")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianOddEven(t *testing.T) {
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("odd median")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range tests {
		if got := e.At(tc.x); !mathx.AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("ECDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.N() != 4 {
		t.Error("N")
	}
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("expected ErrEmpty, got %v", err)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	g := rng.New(3)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = g.Normal(0, 2)
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 10), math.Mod(b, 10)
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(xs, xs); got != 0 {
		t.Errorf("KS of identical samples = %v", got)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KSStatistic(a, b); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("KS of disjoint samples = %v, want 1", got)
	}
}

func TestKSStatisticShifted(t *testing.T) {
	// Two large Gaussian samples with different means: KS should be
	// near the analytic value |Φ(x*) − Φ(x*−1)| maximized around 0.38.
	g := rng.New(5)
	n := 20000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = g.Normal(0, 1)
		b[i] = g.Normal(1, 1)
	}
	d := KSStatistic(a, b)
	want := 2*mathx.NormalCDF(0.5) - 1 // sup_x |Φ(x)−Φ(x−1)| at x=1/2
	if math.Abs(d-want) > 0.02 {
		t.Errorf("KS = %v, want ≈ %v", d, want)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1, 2.5, 5, 9.99})
	if h.Total() != 5 {
		t.Errorf("Total = %v", h.Total())
	}
	if h.Bins() != 5 || h.BinWidth() != 2 {
		t.Error("bins/width")
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Errorf("bin0 = %v", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2.5
		t.Errorf("bin1 = %v", h.Counts[1])
	}
	if h.Counts[2] != 1 { // 5
		t.Errorf("bin2 = %v", h.Counts[2])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %v", h.Counts[4])
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(7)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Error("Total must count clamped values")
	}
}

func TestHistogramProbabilitiesAndDensity(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.5, 0.5, 1.5, 1.5})
	p := h.Probabilities()
	if !mathx.AlmostEqual(p[0], 0.5, 1e-12) || !mathx.AlmostEqual(p[1], 0.5, 1e-12) {
		t.Errorf("probabilities %v", p)
	}
	d := h.Density()
	// Integral = sum(d_i * width) must be 1.
	integral := (d[0] + d[1]) * h.BinWidth()
	if !mathx.AlmostEqual(integral, 1, 1e-12) {
		t.Errorf("density integral = %v", integral)
	}
	empty := NewHistogram(0, 1, 3)
	for _, v := range empty.Probabilities() {
		if v != 0 {
			t.Error("empty histogram probabilities should be zero")
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if !mathx.AlmostEqual(h.BinCenter(0), 1, 1e-12) || !mathx.AlmostEqual(h.BinCenter(4), 9, 1e-12) {
		t.Errorf("BinCenter: %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	c := h.Clone()
	c.Add(0.9)
	if h.Total() != 1 || c.Total() != 2 {
		t.Error("Clone should be independent")
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	g := rng.New(9)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = g.Normal(0, 1)
	}
	bins := FreedmanDiaconisBins(xs, 100)
	if bins < 10 || bins > 60 {
		t.Errorf("FD bins = %d, expected a few dozen for n=1000 normal", bins)
	}
	if FreedmanDiaconisBins([]float64{1}, 100) != 1 {
		t.Error("single point should give 1 bin")
	}
	if FreedmanDiaconisBins([]float64{2, 2, 2}, 100) != 1 {
		t.Error("constant sample should give 1 bin")
	}
	if got := FreedmanDiaconisBins(xs, 5); got != 5 {
		t.Errorf("maxBins clamp: %d", got)
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	// For a N(3,1) sample of size 200, a 95% bootstrap CI for the mean
	// should (almost always, with a fixed seed) contain 3 and be narrow.
	g := rng.New(11)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = g.Normal(3, 1)
	}
	lo, hi := BootstrapCI(xs, Mean, 0.95, 2000, g)
	if lo > 3 || hi < 3 {
		t.Errorf("CI [%v, %v] misses the true mean (flaky only if seed changes)", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI too wide: [%v, %v]", lo, hi)
	}
	if lo >= hi {
		t.Error("CI endpoints out of order")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Med != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !mathx.AlmostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Error("String should render")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("expected ErrEmpty, got %v", err)
	}
	one, err := Summarize([]float64{42})
	if err != nil || !math.IsNaN(one.StdDev) {
		t.Error("single-observation summary should have NaN sd")
	}
}

func TestQuantileAgainstSortProperty(t *testing.T) {
	// Quantile(xs, k/(n-1)) must equal the k-th order statistic.
	g := rng.New(13)
	xs := make([]float64, 37)
	for i := range xs {
		xs[i] = g.Normal(0, 5)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for k := 0; k < len(xs); k++ {
		p := float64(k) / float64(len(xs)-1)
		if got := Quantile(xs, p); !mathx.AlmostEqual(got, sorted[k], 1e-9) {
			t.Errorf("Quantile(%v) = %v, want order statistic %v", p, got, sorted[k])
		}
	}
}
