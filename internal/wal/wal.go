// Package wal is the write-ahead privacy ledger: an append-only,
// fsync-on-append NDJSON intent log that makes per-tenant budget state
// crash-recoverable. It layers the torn-tail-repair idiom of package
// checkpoint under a two-phase record protocol shaped after the
// accountant's Reserve/Commit:
//
//   - a "reserve" record is durable (written and fsynced) before the
//     mechanism runs, so a crash mid-release leaves evidence of the
//     in-flight intent;
//   - a "commit" record — carrying the exact committed guarantees, the
//     response status, and the response fingerprint — is durable before
//     the noised response bytes reach the client, so a value can only
//     have escaped the process if its charge survived the crash;
//   - a "void" record settles an abandoned reserve (admission refusal,
//     release error, drain); a reserve with no settling record is the
//     signature of a crash, and recovery treats it exactly like a void:
//     the release never escaped, so — by the DP-as-channel reading —
//     nothing leaked and nothing is charged.
//
// Recovery (Replay) therefore settles every in-flight request safely:
// commit present → charge the exact logged guarantees; reserve without
// commit → void. Replaying the commit charges through SpendDetail
// rebuilds an Accountant bit-identically: both sides canonically
// compose the same guarantee multiset (sorted, Kahan-summed), so the
// recovered composition equals obs.ComposeBasic of the WAL's commit
// records bit for bit.
//
// Commit records double as the durable idempotency store: a commit
// carrying a client Idempotency-Key pins the response fingerprint and
// body, so a retried request replays the original outcome — across
// restarts — without re-spending ε.
package wal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/mechanism"
)

// Op is the record type of one WAL line.
type Op string

const (
	// OpReserve logs the intent to run a release before any noise is
	// drawn.
	OpReserve Op = "reserve"
	// OpCommit settles a reserve as charged: the release succeeded and
	// its response is about to escape.
	OpCommit Op = "commit"
	// OpVoid settles a reserve as abandoned: nothing escaped, nothing is
	// charged.
	OpVoid Op = "void"
)

// ErrFrozen reports an append to a frozen log. Freeze simulates the
// process dying with the file descriptor: the chaos battery freezes a
// log at an injected crash point so no deferred cleanup can write the
// records a real crash would have lost.
var ErrFrozen = errors.New("wal: log frozen (simulated crash)")

// ErrAppend reports a failure to persist a WAL record. The serve layer
// maps it to a 5xx without committing in memory, so a client never
// holds a response whose charge is not durable.
var ErrAppend = errors.New("wal: append failed")

// Charge is one exact committed guarantee with its ledger metadata —
// what recovery replays through SpendDetail. Epsilon and Delta carry
// the mechanism's recomputed guarantee verbatim (a widened fit commits
// the remaining headroom, a Gibbs density commits its calibrated
// 2·Δq·(ε/2Δq)), so the rebuilt accountant composes the identical
// float bits the live one did.
type Charge struct {
	Mechanism   string  `json:"mechanism,omitempty"`
	Sensitivity float64 `json:"sensitivity,omitempty"`
	Outcomes    int     `json:"outcomes,omitempty"`
	Epsilon     float64 `json:"epsilon"`
	Delta       float64 `json:"delta,omitempty"`
}

// Record is one NDJSON WAL line.
type Record struct {
	Op Op `json:"op"`
	// LSN is the log sequence number: strictly increasing per log, so
	// recovery replays in arrival order.
	LSN uint64 `json:"lsn"`
	// Ref names the reserve LSN a commit or void settles.
	Ref uint64 `json:"ref,omitempty"`
	// Key is the client-supplied Idempotency-Key ("" when the request
	// carried none).
	Key string `json:"key,omitempty"`
	// Endpoint and Seed identify the request for the recovery report.
	Endpoint string `json:"endpoint,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Epsilon is the quoted price at reserve time (advisory; the exact
	// charges live on the commit record).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Status, Fingerprint, and Response pin the committed outcome for
	// idempotent replay: the HTTP status, the sha256 of the response
	// body, and the body itself. Response is stored base64 so a replay
	// returns the escaped bytes exactly (down to the trailing newline
	// the server's encoder emits), matching the fingerprint bit for bit.
	Status      int    `json:"status,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Response    []byte `json:"response,omitempty"`
	// Charges are the exact guarantees this request committed (empty for
	// a free outcome such as a fallback-degraded fit).
	Charges []Charge `json:"charges,omitempty"`
}

// Fingerprint returns the hex sha256 of a response body — the commit
// record's idempotency fingerprint.
func Fingerprint(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Log is one tenant's open write-ahead ledger. All methods are safe for
// concurrent use and nil-safe: a nil *Log accepts every append as a
// no-op, so WAL-disabled servers run the identical code path.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	lsn    uint64
	frozen bool

	// onAppend and onSync feed observability (fsync and append counters)
	// without the wal package importing the metrics registry.
	onAppend func(Record)
	onSync   func(error)
}

// Open opens (creating if needed) the WAL at path and returns the
// surviving records in LSN order. Torn or corrupt trailing lines — the
// signature of a killed writer — are skipped, the final torn line is
// terminated, and the offset is left at EOF so appends follow the
// survivors (the checkpoint package's repair idiom).
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path}
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn tail or corruption: the record never became durable
		}
		if rec.Op == "" || rec.LSN == 0 {
			continue // structurally valid JSON that is not a WAL record
		}
		recs = append(recs, rec)
		if rec.LSN > l.lsn {
			l.lsn = rec.LSN
		}
	}
	if err := sc.Err(); err != nil {
		_ = f.Close() // the read error supersedes
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		_ = f.Close() // the seek error supersedes
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			_ = f.Close() // the read error supersedes
			return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				_ = f.Close() // the repair error supersedes
				return nil, nil, fmt.Errorf("wal: repair %s: %w", path, err)
			}
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	return l, recs, nil
}

// Path returns the log's file path ("" on a nil log).
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// SetHooks installs the append/fsync observers (either may be nil).
func (l *Log) SetHooks(onAppend func(Record), onSync func(error)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onAppend, l.onSync = onAppend, onSync
}

// Freeze drops every subsequent append on the floor (ErrFrozen),
// simulating the file descriptor dying with a crashed process. The
// chaos battery calls it at an injected crash point so the deferred
// cleanup of the "crashed" request cannot write records a real crash
// would never have produced.
func (l *Log) Freeze() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frozen = true
}

// Append assigns the next LSN, writes the record as one NDJSON line in
// a single Write call, and fsyncs before returning — the record is
// durable when Append returns nil. Returns the assigned LSN.
func (l *Log) Append(rec Record) (uint64, error) {
	if l == nil {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		return 0, ErrFrozen
	}
	l.lsn++
	rec.LSN = l.lsn
	line, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("%w: marshal: %v", ErrAppend, err)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrAppend, err)
	}
	if l.onAppend != nil {
		l.onAppend(rec)
	}
	err = l.f.Sync()
	if l.onSync != nil {
		l.onSync(err)
	}
	if err != nil {
		return 0, fmt.Errorf("%w: fsync: %v", ErrAppend, err)
	}
	return rec.LSN, nil
}

// Close releases the underlying file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Outcome is the committed result a Txn.Commit makes durable: the
// response about to escape, with the exact guarantees it charged.
type Outcome struct {
	Status   int
	Response []byte
	Charges  []Charge
}

// Intent identifies the request behind a reserve record.
type Intent struct {
	Endpoint string
	Key      string
	Seed     int64
	// Epsilon is the quoted price (advisory; exact charges ride the
	// commit).
	Epsilon float64
}

// Txn is one two-phase WAL transaction: a durable hold that must be
// settled by exactly one Commit or Release on every path, mirroring
// mechanism.Reservation's protocol (and, when opened with Log.Reserve,
// carrying the accountant's hold inside it). The zero-value contract
// matches the reservation's: a Txn from a nil log settles as a no-op.
type Txn struct {
	log *Log
	lsn uint64
	res *mechanism.Reservation
	g   mechanism.Guarantee

	mu      sync.Mutex
	settled bool
}

// Begin durably logs the intent to run a release (reserve record,
// fsynced) and returns the transaction to settle. On a nil log it
// returns a no-op transaction, so WAL-disabled callers run unchanged.
func (l *Log) Begin(it Intent) (*Txn, error) {
	if l == nil {
		return &Txn{}, nil
	}
	lsn, err := l.Append(Record{
		Op:       OpReserve,
		Key:      it.Key,
		Endpoint: it.Endpoint,
		Seed:     it.Seed,
		Epsilon:  it.Epsilon,
	})
	if err != nil {
		return nil, err
	}
	return &Txn{log: l, lsn: lsn}, nil
}

// Reserve couples the durable intent record with budget admission: the
// reserve line is fsynced first (so recovery sees the in-flight intent
// even if the process dies inside the accountant), then the guarantee
// is admitted against acct. On refusal the orphaned intent is settled
// with a best-effort void and the admission error is returned. The
// returned Txn carries the accountant's hold: Commit settles the log
// and then charges the books; Release voids the log and returns the
// headroom. It is the WAL-logged form of acct.Reserve — the linters'
// two-phase must-settle obligation applies to it identically.
func (l *Log) Reserve(acct *mechanism.Accountant, g mechanism.Guarantee, it Intent) (*Txn, error) {
	tx, err := l.Begin(it)
	if err != nil {
		return nil, err
	}
	res, err := acct.Reserve(g)
	if err != nil {
		tx.Release() // settle the orphaned intent: nothing ran, nothing escaped
		return nil, err
	}
	tx.res = res
	tx.g = g
	return tx, nil
}

// Amount returns the reserved guarantee (zero for an intent-only
// transaction from Begin).
func (tx *Txn) Amount() mechanism.Guarantee {
	if tx == nil {
		return mechanism.Guarantee{}
	}
	return tx.g
}

// Commit settles the transaction as charged: the commit record —
// status, response fingerprint and body, exact charges — is written and
// fsynced FIRST, and only then is the in-memory hold committed. The
// ordering is the durability argument: if Commit returns nil the charge
// is on disk before any response byte can escape, and if the durable
// append fails the in-memory books are never charged (the caller's
// deferred Release frees the hold and the client sees a 5xx, so
// commit-xor-5xx holds on the failure path too). When the Txn carries
// an accountant hold and out.Charges is empty, the hold's own guarantee
// is logged as the single exact charge.
func (tx *Txn) Commit(meta mechanism.SpendMeta, out Outcome) error {
	if tx == nil {
		return nil
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.settled {
		panic("wal: Txn.Commit on a settled transaction")
	}
	if tx.log != nil {
		charges := out.Charges
		if len(charges) == 0 && tx.res != nil {
			charges = []Charge{{
				Mechanism:   meta.Mechanism,
				Sensitivity: meta.Sensitivity,
				Outcomes:    meta.Outcomes,
				Epsilon:     tx.g.Epsilon,
				Delta:       tx.g.Delta,
			}}
		}
		rec := Record{
			Op:      OpCommit,
			Ref:     tx.lsn,
			Status:  out.Status,
			Charges: charges,
		}
		if out.Response != nil {
			rec.Fingerprint = Fingerprint(out.Response)
			rec.Response = out.Response
		}
		if _, err := tx.log.Append(rec); err != nil {
			return err
		}
	}
	tx.settled = true
	tx.res.Commit(meta) // nil-reservation no-op for intent-only transactions
	return nil
}

// Release settles the transaction as abandoned: the accountant hold (if
// any) returns to the budget and a void record settles the reserve
// line. The void append is best-effort — a missing void is equivalent
// to a void at recovery (reserve without commit), which is exactly the
// crash semantics. After Commit (or a second Release) it is a no-op, so
// `defer tx.Release()` is the canonical cleanup.
func (tx *Txn) Release() {
	if tx == nil {
		return
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.settled {
		return
	}
	tx.settled = true
	tx.res.Release()
	if tx.log != nil {
		_, _ = tx.log.Append(Record{Op: OpVoid, Ref: tx.lsn}) //dplint:ignore errdrop a lost void is indistinguishable from — and settled like — a crash before the void
	}
}

// ReplayOutcome is one committed response restored for idempotent
// replay.
type ReplayOutcome struct {
	Status      int
	Fingerprint string
	Response    []byte
}

// State is the settled view of one WAL after Replay: what recovery
// charges, what it voids, and which responses it can replay.
type State struct {
	// Commits are the commit records in LSN order; their Charges are the
	// exact guarantee multiset the rebuilt accountant must compose.
	Commits []Record
	// Unsettled are reserve records with no commit or void — requests in
	// flight at the crash. Their releases never escaped; recovery voids
	// them.
	Unsettled []Record
	// Voided counts reserves settled by an explicit void record.
	Voided int
	// Outcomes restores the idempotency store: committed responses by
	// client key.
	Outcomes map[string]ReplayOutcome
}

// Charges returns every committed guarantee in LSN order — the multiset
// whose canonical composition (obs.ComposeBasic) the recovered
// accountant must reproduce bit for bit.
func (st *State) Charges() []Charge {
	var out []Charge
	for _, c := range st.Commits {
		out = append(out, c.Charges...)
	}
	return out
}

// Replay folds a log's surviving records into their settled state:
// every reserve is resolved as committed, voided, or unsettled
// (crashed, treated as void), and the committed outcomes keyed by
// Idempotency-Key are restored. Records are processed in LSN order;
// Replay is a pure function, so recovery is deterministic regardless of
// worker counts or replay timing.
func Replay(recs []Record) *State {
	st := &State{Outcomes: make(map[string]ReplayOutcome)}
	reserves := make(map[uint64]Record)
	var order []uint64
	for _, rec := range recs {
		switch rec.Op {
		case OpReserve:
			reserves[rec.LSN] = rec
			order = append(order, rec.LSN)
		case OpCommit:
			res, ok := reserves[rec.Ref]
			if ok {
				delete(reserves, rec.Ref)
				if res.Key != "" && rec.Status != 0 {
					st.Outcomes[res.Key] = ReplayOutcome{
						Status:      rec.Status,
						Fingerprint: rec.Fingerprint,
						Response:    append([]byte(nil), rec.Response...),
					}
				}
			}
			// A commit whose reserve was lost to corruption still charges:
			// the response may have escaped, so the conservative reading is
			// that it did.
			st.Commits = append(st.Commits, rec)
		case OpVoid:
			if _, ok := reserves[rec.Ref]; ok {
				delete(reserves, rec.Ref)
				st.Voided++
			}
		}
	}
	for _, lsn := range order {
		if res, ok := reserves[lsn]; ok {
			st.Unsettled = append(st.Unsettled, res)
		}
	}
	return st
}
