package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mechanism"
)

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alpha.wal")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	lsn1, err := l.Append(Record{Op: OpReserve, Endpoint: "fit", Key: "k1", Seed: 7, Epsilon: 0.5})
	if err != nil {
		t.Fatalf("append reserve: %v", err)
	}
	body := []byte(`{"theta":[1,2]}` + "\n")
	if _, err := l.Append(Record{
		Op: OpCommit, Ref: lsn1, Status: 200,
		Fingerprint: Fingerprint(body), Response: body,
		Charges: []Charge{{Mechanism: "gibbs", Epsilon: 0.5, Delta: 0.05}},
	}); err != nil {
		t.Fatalf("append commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, recs2 := openT(t, path)
	if len(recs2) != 2 {
		t.Fatalf("reopen: got %d records, want 2", len(recs2))
	}
	if recs2[0].Op != OpReserve || recs2[0].Key != "k1" || recs2[0].Seed != 7 {
		t.Fatalf("reserve record mangled: %+v", recs2[0])
	}
	if recs2[1].Op != OpCommit || recs2[1].Ref != lsn1 || recs2[1].Status != 200 {
		t.Fatalf("commit record mangled: %+v", recs2[1])
	}
	if recs2[1].Fingerprint != Fingerprint(body) {
		t.Fatalf("fingerprint mangled")
	}
	if string(recs2[1].Response) != string(body) {
		t.Fatalf("response body mangled: %q", recs2[1].Response)
	}
}

func TestTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := openT(t, path)
	if _, err := l.Append(Record{Op: OpReserve, Endpoint: "fit", Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Op: OpCommit, Ref: 1, Status: 200, Charges: []Charge{{Epsilon: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a torn write: a half-flushed reserve line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"reserve","lsn":3,"endpo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs := openT(t, path)
	if len(recs) != 2 {
		t.Fatalf("torn tail not skipped: got %d records, want 2", len(recs))
	}
	// Appends after repair must land on a fresh line and survive reopen.
	if _, err := l2.Append(Record{Op: OpReserve, Endpoint: "density", Epsilon: 0.1}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l2.Close()
	_, recs3 := openT(t, path)
	if len(recs3) != 3 {
		t.Fatalf("post-repair append lost: got %d records, want 3", len(recs3))
	}
	if recs3[2].Endpoint != "density" {
		t.Fatalf("post-repair record mangled: %+v", recs3[2])
	}
}

func TestFreeze(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.wal")
	l, _ := openT(t, path)
	if _, err := l.Append(Record{Op: OpReserve, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	l.Freeze()
	if _, err := l.Append(Record{Op: OpVoid, Ref: 1}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("append on frozen log: err=%v, want ErrFrozen", err)
	}
	// The crash left a torn state: reserve without settlement.
	_, recs := openT(t, path)
	st := Replay(recs)
	if len(st.Unsettled) != 1 || len(st.Commits) != 0 {
		t.Fatalf("frozen-crash replay: unsettled=%d commits=%d, want 1/0", len(st.Unsettled), len(st.Commits))
	}
}

func TestReplaySettlement(t *testing.T) {
	recs := []Record{
		{Op: OpReserve, LSN: 1, Key: "a", Endpoint: "fit", Epsilon: 0.5},
		{Op: OpCommit, LSN: 2, Ref: 1, Status: 200, Fingerprint: "f1", Response: []byte(`{"x":1}`), Charges: []Charge{{Epsilon: 0.5, Delta: 0.05}}},
		{Op: OpReserve, LSN: 3, Key: "b", Endpoint: "select", Epsilon: 0.2},
		{Op: OpVoid, LSN: 4, Ref: 3},
		{Op: OpReserve, LSN: 5, Key: "c", Endpoint: "summary", Epsilon: 0.1}, // crashed in flight
		{Op: OpReserve, LSN: 6, Endpoint: "density", Epsilon: 0.3},
		{Op: OpCommit, LSN: 7, Ref: 6, Status: 429}, // refused outcome: no charge, no key
	}
	st := Replay(recs)
	if len(st.Commits) != 2 {
		t.Fatalf("commits=%d, want 2", len(st.Commits))
	}
	if st.Voided != 1 {
		t.Fatalf("voided=%d, want 1", st.Voided)
	}
	if len(st.Unsettled) != 1 || st.Unsettled[0].Key != "c" {
		t.Fatalf("unsettled=%+v, want the crashed summary reserve", st.Unsettled)
	}
	ch := st.Charges()
	if len(ch) != 1 || ch[0].Epsilon != 0.5 || ch[0].Delta != 0.05 {
		t.Fatalf("charges=%+v, want the single committed guarantee", ch)
	}
	out, ok := st.Outcomes["a"]
	if !ok || out.Status != 200 || out.Fingerprint != "f1" || string(out.Response) != `{"x":1}` {
		t.Fatalf("outcome for key a mangled: %+v ok=%v", out, ok)
	}
	if _, ok := st.Outcomes["b"]; ok {
		t.Fatalf("voided request must not pin an outcome")
	}
	if _, ok := st.Outcomes["c"]; ok {
		t.Fatalf("crashed request must not pin an outcome")
	}
}

func TestTxnCommitChargesBooks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.wal")
	l, _ := openT(t, path)
	acct := &mechanism.Accountant{}
	if err := acct.SetBudget(mechanism.Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	g := mechanism.Guarantee{Epsilon: 0.5}
	tx, err := l.Reserve(acct, g, Intent{Endpoint: "fit", Key: "k", Seed: 3, Epsilon: 0.5})
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if tx.Amount() != g {
		t.Fatalf("Amount=%+v, want %+v", tx.Amount(), g)
	}
	body := []byte(`{"ok":true}`)
	if err := tx.Commit(mechanism.SpendMeta{Mechanism: "gibbs"}, Outcome{Status: 200, Response: body}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx.Release() // post-commit Release must be a no-op
	if acct.Count() != 1 || acct.Reserved() != 0 {
		t.Fatalf("books: count=%d reserved=%d, want 1/0", acct.Count(), acct.Reserved())
	}
	if got := acct.BasicComposition().Epsilon; got != 0.5 {
		t.Fatalf("composed ε=%v, want 0.5", got)
	}
	l.Close()
	_, recs := openT(t, path)
	st := Replay(recs)
	if len(st.Commits) != 1 || len(st.Unsettled) != 0 {
		t.Fatalf("replay: commits=%d unsettled=%d", len(st.Commits), len(st.Unsettled))
	}
	// An empty Outcome.Charges defaults to the hold's own guarantee.
	ch := st.Charges()
	if len(ch) != 1 || ch[0].Epsilon != 0.5 || ch[0].Mechanism != "gibbs" {
		t.Fatalf("defaulted charge mangled: %+v", ch)
	}
	if st.Commits[0].Fingerprint != Fingerprint(body) {
		t.Fatalf("commit fingerprint mangled")
	}
}

func TestTxnReleaseVoids(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.wal")
	l, _ := openT(t, path)
	acct := &mechanism.Accountant{}
	if err := acct.SetBudget(mechanism.Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	tx, err := l.Reserve(acct, mechanism.Guarantee{Epsilon: 0.5}, Intent{Endpoint: "fit"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Release()
	tx.Release() // idempotent
	if acct.Count() != 0 || acct.Reserved() != 0 {
		t.Fatalf("release left books dirty: count=%d reserved=%d", acct.Count(), acct.Reserved())
	}
	l.Close()
	_, recs := openT(t, path)
	st := Replay(recs)
	if st.Voided != 1 || len(st.Unsettled) != 0 || len(st.Commits) != 0 {
		t.Fatalf("replay after release: voided=%d unsettled=%d commits=%d", st.Voided, len(st.Unsettled), len(st.Commits))
	}
}

func TestReserveAdmissionRefusalVoidsIntent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adm.wal")
	l, _ := openT(t, path)
	acct := &mechanism.Accountant{}
	if err := acct.SetBudget(mechanism.Guarantee{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	_, err := l.Reserve(acct, mechanism.Guarantee{Epsilon: 0.5}, Intent{Endpoint: "fit"})
	if !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("err=%v, want ErrBudgetExhausted", err)
	}
	l.Close()
	_, recs := openT(t, path)
	st := Replay(recs)
	if st.Voided != 1 || len(st.Unsettled) != 0 {
		t.Fatalf("refused admission must settle its intent: voided=%d unsettled=%d", st.Voided, len(st.Unsettled))
	}
}

func TestNilLogNoops(t *testing.T) {
	var l *Log
	if _, err := l.Append(Record{Op: OpReserve}); err != nil {
		t.Fatalf("nil append: %v", err)
	}
	l.Freeze()
	l.SetHooks(nil, nil)
	if l.Path() != "" {
		t.Fatal("nil Path")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	acct := &mechanism.Accountant{}
	if err := acct.SetBudget(mechanism.Guarantee{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	tx, err := l.Reserve(acct, mechanism.Guarantee{Epsilon: 0.5}, Intent{Endpoint: "fit"})
	if err != nil {
		t.Fatalf("nil-log Reserve: %v", err)
	}
	if err := tx.Commit(mechanism.SpendMeta{Mechanism: "gibbs"}, Outcome{Status: 200}); err != nil {
		t.Fatalf("nil-log Commit: %v", err)
	}
	if acct.Count() != 1 {
		t.Fatalf("nil-log Txn must still charge the books: count=%d", acct.Count())
	}
	var nilTx *Txn
	nilTx.Release()
	if err := nilTx.Commit(mechanism.SpendMeta{}, Outcome{}); err != nil {
		t.Fatalf("nil Txn Commit: %v", err)
	}
}

func TestHooks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.wal")
	l, _ := openT(t, path)
	var appends, syncs int
	l.SetHooks(func(Record) { appends++ }, func(err error) {
		if err != nil {
			t.Errorf("sync hook error: %v", err)
		}
		syncs++
	})
	if _, err := l.Append(Record{Op: OpReserve, Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Op: OpVoid, Ref: 1}); err != nil {
		t.Fatal(err)
	}
	if appends != 2 || syncs != 2 {
		t.Fatalf("hooks: appends=%d syncs=%d, want 2/2", appends, syncs)
	}
}

// FuzzWALRepair feeds arbitrary bytes as a WAL file and demands the
// repair invariants: Open never errors on mangled content, never
// panics, surviving records replay cleanly, and a post-repair append
// round-trips.
func FuzzWALRepair(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"op":"reserve","lsn":1,"endpoint":"fit","epsilon":0.5}` + "\n"))
	f.Add([]byte(`{"op":"reserve","lsn":1}` + "\n" + `{"op":"commit","lsn":2,"ref":1,"status":200,"charges":[{"epsilon":0.5}]}` + "\n"))
	f.Add([]byte(`{"op":"reserve","lsn":1}` + "\n" + `{"op":"comm`))
	f.Add([]byte("\x00\xff garbage\n{\"op\":\"void\",\"lsn\":9,\"ref\":3}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path)
		if err != nil {
			t.Fatalf("Open on arbitrary bytes: %v", err)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].LSN < recs[i-1].LSN {
				t.Fatalf("records not LSN-ordered: %d after %d", recs[i].LSN, recs[i-1].LSN)
			}
		}
		st := Replay(recs)
		if got := len(st.Commits) + len(st.Unsettled); got > len(recs) {
			t.Fatalf("replay invented records: %d from %d", got, len(recs))
		}
		lsn, err := l.Append(Record{Op: OpReserve, Endpoint: "fit", Epsilon: 0.25})
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		l.Close()
		_, recs2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
		var found bool
		for _, r := range recs2 {
			if r.LSN == lsn && r.Op == OpReserve && r.Endpoint == "fit" {
				found = true
			}
		}
		if !found {
			t.Fatalf("post-repair append lost on reopen (lsn=%d, %d records)", lsn, len(recs2))
		}
	})
}
